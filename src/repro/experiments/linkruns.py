"""Shared link-simulation plumbing for the throughput experiments."""

from __future__ import annotations

import warnings
from dataclasses import replace


from repro.api import (
    BackendSpec,
    CacheSpec,
    FarmSpec,
    StackConfig,
    UplinkStack,
    build_stack,
)
from repro.channel.testbed import IndoorTestbed
from repro.detectors.base import Detector
from repro.detectors.sphere import SphereDecoder
from repro.experiments.common import ExperimentProfile
from repro.flexcore.detector import FlexCoreDetector
from repro.link.calibration import find_snr_for_per
from repro.link.channels import rayleigh_sampler, testbed_sampler
from repro.link.config import LinkConfig
from repro.link.simulation import LinkResult, simulate_link
from repro.mimo.system import MimoSystem
from repro.runtime.engine import BatchedUplinkEngine


def make_link_config(
    system: MimoSystem, profile: ExperimentProfile
) -> LinkConfig:
    """Profile-sized link configuration for ``system``."""
    return LinkConfig(
        system=system,
        ofdm_symbols_per_packet=profile.ofdm_symbols_per_packet,
        num_subcarriers=profile.subcarriers,
    )


def make_sampler_factory(
    config: LinkConfig,
    profile: ExperimentProfile,
    channel_kind: str = "testbed",
    seed_offset: int = 0,
):
    """Zero-arg factory returning a fresh (but deterministic) sampler."""
    seed = profile.seed + seed_offset

    def factory():
        if channel_kind == "rayleigh":
            return rayleigh_sampler(config)
        testbed = IndoorTestbed(
            num_rx=config.system.num_rx_antennas, rng=seed
        )
        return testbed_sampler(config, testbed, num_frames=8)

    return factory


def ml_reference_detector(
    system: MimoSystem, profile: ExperimentProfile
) -> Detector:
    """The exact/near-exact ML reference used for SNR calibration.

    The ``full`` profile uses the exact-ML sphere decoder; cheaper
    profiles use a large-path FlexCore proxy, which Fig. 9 shows to be
    within a whisker of ML while running orders of magnitude faster here
    (vectorised).  The substitution is recorded in the experiment notes.
    """
    if profile.use_sphere_for_ml:
        return SphereDecoder(system)
    proxy_paths = min(profile.ml_proxy_paths, system.num_leaves)
    return FlexCoreDetector(system, num_paths=proxy_paths)


def runtime_stack_config(
    stack_config: "StackConfig | None" = None,
    backend: str = "serial",
    streaming: bool = False,
    cells: int = 1,
    max_cache_entries: int = 4096,
) -> StackConfig:
    """The effective runtime :class:`~repro.api.StackConfig` of one run.

    An explicit ``stack_config`` (e.g. from the runner's ``--config`` /
    ``--preset``) is authoritative and returned with its detector spec
    stripped — throughput experiments sweep their own detectors, so the
    embedded config describes the runtime stack only — and its governor
    detached: a PER/throughput measurement must run every swept
    detector at its labelled path count with no admission control, or
    the rows silently stop meaning what they say (the ``farm``
    experiment is where governed behaviour is measured).  Otherwise one
    is assembled from the legacy flag set; the cache is sized to hold
    every (subcarrier, SNR-probe) context an experiment sweep touches
    for one detector, so testbed traces that cycle their frames across
    packets hit the cache on every revisit.
    """
    if stack_config is not None:
        return replace(stack_config, detector=None, governor=None)
    return StackConfig(
        backend=BackendSpec(backend),
        cache=CacheSpec(max_entries=max_cache_entries),
        farm=FarmSpec(streaming=streaming or cells > 1, cells=cells),
    )


def make_stack(detector: Detector, config: StackConfig) -> UplinkStack:
    """One experiment detector on the configured runtime stack.

    ``streaming`` configs route every batch through the slot-deadline
    scheduler sharded across the farm's cells
    (:class:`~repro.runtime.cells.StreamingUplinkEngine`) instead of the
    direct batch engine; results are bit-identical, only the execution
    path changes.
    """
    return build_stack(config, detector=detector)


def make_engine(
    detector: Detector,
    backend: str = "serial",
    streaming: bool = False,
    cells: int = 1,
):
    """Deprecated: build the runtime through the config-first API.

    Thin wrapper kept for callers of the pre-``repro.api`` surface;
    equivalent to ``make_stack(detector, runtime_stack_config(...))``.
    """
    warnings.warn(
        "make_engine is deprecated; use make_stack(detector, "
        "runtime_stack_config(...)) — or repro.api.build_stack directly",
        DeprecationWarning,
        stacklevel=2,
    )
    return make_stack(
        detector,
        runtime_stack_config(
            backend=backend, streaming=streaming, cells=cells
        ),
    )


def calibrate_ml_snr(
    system: MimoSystem,
    target_per: float,
    profile: ExperimentProfile,
    channel_kind: str = "testbed",
    backend: str = "serial",
) -> float:
    """SNR (dB) at which the ML reference hits ``target_per``."""
    config = make_link_config(system, profile)
    detector = ml_reference_detector(system, profile)
    factory = make_sampler_factory(config, profile, channel_kind)
    with make_stack(
        detector, runtime_stack_config(backend=backend)
    ) as engine:
        result = find_snr_for_per(
            config,
            detector,
            target_per,
            factory,
            num_packets=profile.calibration_packets,
            seed=profile.seed,
            engine=engine,
        )
    return result.snr_db


def run_point(
    config: LinkConfig,
    detector: Detector,
    snr_db: float,
    profile: ExperimentProfile,
    sampler_factory,
    seed_offset: int = 0,
    engine: BatchedUplinkEngine | None = None,
) -> LinkResult:
    """One PER/throughput measurement with common random numbers."""
    if engine is None:
        engine = make_stack(detector, runtime_stack_config())
    return simulate_link(
        config,
        detector,
        snr_db,
        profile.packets_per_point,
        sampler_factory(),
        rng=profile.seed + seed_offset,
        engine=engine,
    )


def flexcore_pe_sweep(max_paths: int, profile: ExperimentProfile) -> list[int]:
    """The processing-element counts Fig. 9's x-axis sweeps."""
    if profile.name.startswith("quick"):
        sweep = [1, 4, 16, 64, 196]
    else:
        sweep = [1, 2, 4, 8, 16, 32, 64, 128, 196]
    return [count for count in sweep if count <= max_paths]
