"""Experiment harnesses regenerating every table and figure of the paper.

Each module exposes ``run(profile) -> ExperimentResult``; the CLI
(``python -m repro.experiments.runner``) and the benchmark suite drive
them.  Monte-Carlo sizes come from the profile (``quick`` / ``medium`` /
``full``; env var ``REPRO_PROFILE`` overrides the default).
"""

from repro.experiments.common import (
    PROFILES,
    ExperimentProfile,
    ExperimentResult,
    get_profile,
)

__all__ = [
    "PROFILES",
    "ExperimentProfile",
    "ExperimentResult",
    "get_profile",
]
