"""Extension experiment: soft-output FlexCore's coding gain.

Not a paper artefact — §7 names soft detection as future work; this
experiment quantifies what it buys on the reproduced system: coded
PER/BER of hard-decision FlexCore vs max-log soft FlexCore over an SNR
sweep, at a fixed PE budget.
"""

from __future__ import annotations


from repro.experiments.common import ExperimentResult, get_profile
from repro.experiments.linkruns import make_link_config, make_sampler_factory
from repro.flexcore.soft import SoftFlexCoreDetector
from repro.link.simulation import simulate_link
from repro.mimo.system import MimoSystem
from repro.modulation.constellation import QamConstellation

NUM_PATHS = 32


def run(
    profile=None,
    num_streams: int = 8,
    qam_order: int = 16,
    snrs_db: tuple[float, ...] = (4.0, 5.0, 6.0, 7.0),
) -> ExperimentResult:
    profile = get_profile(profile)
    system = MimoSystem(num_streams, num_streams, QamConstellation(qam_order))
    config = make_link_config(system, profile)
    factory = make_sampler_factory(config, profile, "testbed")
    detector = SoftFlexCoreDetector(system, num_paths=NUM_PATHS)

    result = ExperimentResult(
        experiment="soft_gain",
        title=f"Extension: soft vs hard FlexCore "
        f"({system.label()}, {NUM_PATHS} PEs)",
        profile=profile.name,
        columns=["snr_db", "decisions", "per", "ber"],
    )
    for snr_db in snrs_db:
        for soft in (False, True):
            link = simulate_link(
                config,
                detector,
                snr_db,
                profile.packets_per_point,
                factory(),
                rng=profile.seed,
                use_soft=soft,
            )
            result.add_row(
                snr_db=snr_db,
                decisions="soft" if soft else "hard",
                per=link.per,
                ber=link.ber,
            )
    # Summarise the gain at the steepest point of the waterfall.
    hard_bers = [r["ber"] for r in result.rows if r["decisions"] == "hard"]
    soft_bers = [r["ber"] for r in result.rows if r["decisions"] == "soft"]
    improved = sum(
        soft <= hard for hard, soft in zip(hard_bers, soft_bers)
    )
    result.add_note(
        f"soft decisions match or beat hard at {improved}/{len(hard_bers)} "
        "SNR points (max-log LLRs from the FlexCore candidate list)"
    )
    return result
