"""Fig. 12: SNR loss vs ML under LTE latency constraints, per mode.

Couples the GPU execution model with the algorithmic SNR-loss tables:
for each LTE bandwidth mode, the 500 µs slot budget limits how many
FlexCore paths (or whether FCSD at all) the GPU can process in time; the
surviving path count maps to an SNR loss.  SIC is the single-path row.

Reproduced claims: FlexCore degrades gracefully from ~0.2 dB (1.25 MHz)
to a few dB (20 MHz) while FCSD is binary — it either fits (1.25 MHz,
L=1) or is unsupported; SIC can lose >10 dB.
"""

from __future__ import annotations


from repro.experiments.common import ExperimentResult, get_profile
from repro.experiments.snr_loss import build_snr_loss_table
from repro.mimo.system import MimoSystem
from repro.modulation.constellation import QamConstellation
from repro.ofdm.lte import LTE_MODES, SLOT_DURATION_S
from repro.parallel.gpu import GpuExecutionModel

QAM_ORDER = 64
STREAMS = 8  # CUDA streams, as §5.2 employs


def run(
    profile=None,
    per_targets=(0.1, 0.01),
    sizes=(8, 12),
    backend: str = "serial",
) -> ExperimentResult:
    """Regenerate Fig. 12.

    The SNR-loss calibrations behind every row run on the batched uplink
    runtime; ``backend`` picks its execution backend.
    """
    profile = get_profile(profile)
    gpu = GpuExecutionModel()
    result = ExperimentResult(
        experiment="fig12",
        title="Fig. 12: SNR loss vs ML under LTE latency requirements "
        "(64-QAM)",
        profile=profile.name,
        columns=[
            "system",
            "per_target",
            "lte_mode",
            "scheme",
            "supported_paths",
            "snr_loss_db",
        ],
    )
    for size in sizes:
        system = MimoSystem(size, size, QamConstellation(QAM_ORDER))
        fcsd_l1_paths = system.constellation.order
        for target in per_targets:
            table = build_snr_loss_table(
                system, target, profile, backend=backend
            )
            for mode in LTE_MODES:
                vectors = mode.vectors_per_slot
                flexcore_paths = gpu.max_supported_paths(
                    system,
                    vectors,
                    SLOT_DURATION_S,
                    streams=STREAMS,
                    num_channels=mode.occupied_subcarriers,
                )
                label = f"{size}x{size}"
                result.add_row(
                    system=label,
                    per_target=target,
                    lte_mode=mode.label(),
                    scheme="flexcore",
                    supported_paths=flexcore_paths,
                    snr_loss_db=(
                        table.loss_for_paths(flexcore_paths)
                        if flexcore_paths
                        else float("inf")
                    ),
                )
                fcsd_ok = gpu.fcsd_supported(
                    system,
                    1,
                    vectors,
                    SLOT_DURATION_S,
                    streams=STREAMS,
                    num_channels=mode.occupied_subcarriers,
                )
                result.add_row(
                    system=label,
                    per_target=target,
                    lte_mode=mode.label(),
                    scheme="fcsd",
                    supported_paths=fcsd_l1_paths if fcsd_ok else 0,
                    snr_loss_db=(
                        table.loss_for_paths(fcsd_l1_paths)
                        if fcsd_ok
                        else float("inf")
                    ),
                )
                result.add_row(
                    system=label,
                    per_target=target,
                    lte_mode=mode.label(),
                    scheme="sic",
                    supported_paths=1,
                    snr_loss_db=table.loss_for_paths(1),
                )
    result.add_note(
        "supported_paths = largest FlexCore |E| meeting the 500 us slot "
        "deadline in the GPU model; inf loss marks unsupported modes "
        "(the paper's 'x')"
    )
    result.add_note(
        "FCSD loss uses the FlexCore loss curve at |Q| paths — an upper "
        "bound on FCSD quality, favouring the baseline"
    )
    return result
