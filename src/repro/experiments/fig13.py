"""Fig. 13: FPGA energy efficiency vs instantiated processing elements.

For detection operating points that deliver the *same network throughput*
(from Fig. 9: FlexCore 32 paths ~ FCSD 64 paths at L=1; FlexCore 128 ~
FCSD 4096 at L=2), sweep the number of instantiated PEs ``M`` and report
Joules/bit of the pipelined engines at the 5.5 ns design point —
instantiated up to the paper's host-memory limits, extrapolated to the
75% device-utilisation cap beyond.

Reproduced claims: J/bit falls with M for both engines; FCSD needs on
average ~1.5x (Nt=8, L=1) up to ~29x (Nt=12, L=2) more J/bit; FlexCore
reaches ~13 Gb/s processing throughput at M=32 for 32 paths.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult, get_profile
from repro.mimo.system import MimoSystem
from repro.modulation.constellation import QamConstellation
from repro.parallel.fpga import (
    FCSD_COST_MODEL,
    FLEXCORE_COST_MODEL,
    FpgaEngineModel,
)

#: (Nt, L) -> (FlexCore paths, FCSD paths) with equal network throughput
#: per Fig. 9 (§5.3's pairing).
EQUIVALENT_PATHS = {
    (8, 1): (32, 64),
    (12, 1): (32, 64),
    (12, 2): (128, 4096),
}

#: Host-memory limits on instantiated PEs reported in §5.3.
INSTANTIATED_LIMITS = {"flexcore": 32, "fcsd_8": 64, "fcsd_12": 32}


def _pe_sweep(limit: int) -> list[int]:
    sweep = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512]
    return [m for m in sweep if m <= limit]


def run(profile=None) -> ExperimentResult:
    profile = get_profile(profile)
    result = ExperimentResult(
        experiment="fig13",
        title="Fig. 13: FPGA energy efficiency at equal network throughput "
        "(64-QAM)",
        profile=profile.name,
        columns=[
            "scheme",
            "system",
            "expansion",
            "num_paths",
            "num_pes",
            "extrapolated",
            "throughput_gbps",
            "joules_per_bit",
        ],
    )
    for (num_streams, level), (flex_paths, fcsd_paths) in EQUIVALENT_PATHS.items():
        system = MimoSystem(num_streams, num_streams, QamConstellation(64))
        engines = {
            "flexcore": (FpgaEngineModel(FLEXCORE_COST_MODEL, system), flex_paths,
                         INSTANTIATED_LIMITS["flexcore"]),
            "fcsd": (FpgaEngineModel(FCSD_COST_MODEL, system), fcsd_paths,
                     INSTANTIATED_LIMITS[f"fcsd_{num_streams}"]),
        }
        for scheme, (engine, paths, instantiated_limit) in engines.items():
            cap = engine.max_instantiable_pes()
            for num_pes in _pe_sweep(cap):
                result.add_row(
                    scheme=scheme,
                    system=f"{num_streams}x{num_streams}",
                    expansion=level,
                    num_paths=paths,
                    num_pes=num_pes,
                    extrapolated=num_pes > instantiated_limit,
                    throughput_gbps=engine.processing_throughput_bps(
                        num_pes, paths
                    )
                    / 1e9,
                    joules_per_bit=engine.energy_per_bit(num_pes, paths),
                )
    # Headline ratio notes.
    def average_ratio(num_streams: int, level: int) -> float:
        flex = [
            row
            for row in result.rows
            if row["scheme"] == "flexcore"
            and row["system"] == f"{num_streams}x{num_streams}"
            and row["expansion"] == level
        ]
        fcsd = {
            row["num_pes"]: row
            for row in result.rows
            if row["scheme"] == "fcsd"
            and row["system"] == f"{num_streams}x{num_streams}"
            and row["expansion"] == level
        }
        ratios = [
            fcsd[row["num_pes"]]["joules_per_bit"] / row["joules_per_bit"]
            for row in flex
            if row["num_pes"] in fcsd
        ]
        return float(np.mean(ratios)) if ratios else float("nan")

    result.add_note(
        f"average FCSD/FlexCore J-per-bit ratio: "
        f"{average_ratio(8, 1):.2f}x (8x8, L=1; paper 1.54x), "
        f"{average_ratio(12, 2):.2f}x (12x12, L=2; paper 28.8x)"
    )
    flex32 = [
        row
        for row in result.rows
        if row["scheme"] == "flexcore"
        and row["system"] == "12x12"
        and row["expansion"] == 1
        and row["num_pes"] == 32
    ]
    if flex32:
        result.add_note(
            f"FlexCore 32 PEs / 32 paths processing throughput: "
            f"{flex32[0]['throughput_gbps']:.2f} Gb/s (paper: 13.09)"
        )
    return result
