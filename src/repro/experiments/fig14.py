"""Fig. 14: per-level rank probabilities — model vs simulation vs testbed.

Validates the geometric model ``P_Nt(k) = (1 - Pe) Pe^(k-1)`` (Eq. 11)
for the probability that the transmitted 16-QAM symbol is the k-th
closest constellation point to the received observable, at 1 dB and
15 dB SNR:

* *model*: Eq. 11 with the corrected per-level error probability;
* *model_paper*: Eq. 11 with the verbatim Eq. 4 constants (shown for
  comparison — this is the reproduction's check on the formula);
* *simulated*: AWGN Monte-Carlo, as the paper's "Simulation Results";
* *testbed*: Monte-Carlo over the top detection level of sorted-QR
  testbed channels (the WARP substitute for "Experimental Results").
"""

from __future__ import annotations

import numpy as np

from repro.channel.testbed import IndoorTestbed
from repro.experiments.common import ExperimentResult, get_profile
from repro.flexcore.probability import LevelErrorModel
from repro.mimo.model import noise_variance_for_snr_db
from repro.mimo.qr import sorted_qr
from repro.modulation.constellation import QamConstellation
from repro.utils.rng import as_rng

QAM_ORDER = 16
MAX_RANK = 10
SNRS_DB = (1.0, 15.0)


def simulate_rank_distribution(
    constellation: QamConstellation,
    noise_var: float,
    trials: int,
    max_rank: int,
    rng=None,
    channel_gain: float = 1.0,
) -> np.ndarray:
    """Monte-Carlo rank histogram of the transmitted symbol.

    ``channel_gain`` scales the constellation (the |R(l,l)| of a real
    channel); AWGN corresponds to gain 1.
    """
    generator = as_rng(rng)
    points = constellation.points * channel_gain
    counts = np.zeros(max_rank)
    chunk = 4096
    remaining = trials
    while remaining > 0:
        block = min(chunk, remaining)
        sent = generator.integers(0, constellation.order, size=block)
        noise = np.sqrt(noise_var / 2.0) * (
            generator.standard_normal(block)
            + 1j * generator.standard_normal(block)
        )
        received = points[sent] + noise
        distances = np.abs(received[:, None] - points[None, :])
        ranks = np.argsort(distances, axis=1)
        position = np.argmax(ranks == sent[:, None], axis=1)  # 0-based rank
        for k in range(max_rank):
            counts[k] += np.count_nonzero(position == k)
        remaining -= block
    return counts / trials


def testbed_rank_distribution(
    constellation: QamConstellation,
    noise_var: float,
    trials: int,
    max_rank: int,
    rng=None,
    num_rx: int = 8,
) -> np.ndarray:
    """Rank histogram at the top detection level of testbed channels."""
    generator = as_rng(rng)
    testbed = IndoorTestbed(num_rx=num_rx, rng=generator)
    counts = np.zeros(max_rank)
    channels = 24
    per_channel = max(trials // channels, 1)
    total = 0
    for _ in range(channels):
        trace = testbed.generate_uplink_trace(
            num_users=num_rx, num_frames=1, num_subcarriers=4
        )
        for sc in range(trace.num_subcarriers):
            qr = sorted_qr(trace.response[0, sc])
            gain = float(np.real(qr.r[-1, -1]))
            counts += per_channel * simulate_rank_distribution(
                constellation,
                noise_var,
                per_channel,
                max_rank,
                generator,
                channel_gain=gain,
            )
            total += per_channel
    return counts / total


def run(profile=None) -> ExperimentResult:
    profile = get_profile(profile)
    constellation = QamConstellation(QAM_ORDER)
    result = ExperimentResult(
        experiment="fig14",
        title="Fig. 14: P_Nt(k) — geometric model vs Monte-Carlo "
        "(16-QAM)",
        profile=profile.name,
        columns=[
            "snr_db",
            "rank",
            "model",
            "model_paper",
            "simulated",
            "testbed",
        ],
    )
    trials = profile.probability_trials
    for snr_db in SNRS_DB:
        noise_var = noise_variance_for_snr_db(snr_db)
        corrected = LevelErrorModel.from_channel(
            np.array([1.0]), noise_var, constellation, formula="corrected"
        )
        literal = LevelErrorModel.from_channel(
            np.array([1.0]), noise_var, constellation, formula="paper"
        )
        model = corrected.rank_distribution(0, MAX_RANK)
        model_paper = literal.rank_distribution(0, MAX_RANK)
        simulated = simulate_rank_distribution(
            constellation, noise_var, trials, MAX_RANK, rng=profile.seed
        )
        testbed = testbed_rank_distribution(
            constellation,
            noise_var,
            max(trials // 10, 1000),
            MAX_RANK,
            rng=profile.seed + 1,
        )
        for k in range(MAX_RANK):
            result.add_row(
                snr_db=snr_db,
                rank=k + 1,
                model=float(model[k]),
                model_paper=float(model_paper[k]),
                simulated=float(simulated[k]),
                testbed=float(testbed[k]),
            )
    result.add_note(
        "model = Eq. 11 with corrected Pe; model_paper = verbatim Eq. 4 "
        "constants (clipped); testbed = top level of sorted-QR indoor "
        "traces, the WARP substitute"
    )
    return result
