"""Shared experiment infrastructure: profiles, result tables, persistence."""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import ExperimentError
from repro.utils.io import atomic_write_text  # noqa: F401  (compat re-export)


@dataclass(frozen=True)
class ExperimentProfile:
    """Monte-Carlo sizing for one run.

    ``quick`` keeps every experiment in CI-friendly territory (seconds to a
    couple of minutes), ``medium`` is what EXPERIMENTS.md records, ``full``
    approaches the paper's statistical quality and runs for hours.
    """

    name: str
    packets_per_point: int
    calibration_packets: int
    subcarriers: int
    ofdm_symbols_per_packet: int
    probability_trials: int
    flops_trials: int
    use_sphere_for_ml: bool
    ml_proxy_paths: int
    seed: int = 20170327  # NSDI'17 opening day

    def scaled(self, factor: float) -> "ExperimentProfile":
        """A profile with Monte-Carlo sizes scaled by ``factor``."""
        return ExperimentProfile(
            name=f"{self.name}x{factor:g}",
            packets_per_point=max(1, int(self.packets_per_point * factor)),
            calibration_packets=max(1, int(self.calibration_packets * factor)),
            subcarriers=self.subcarriers,
            ofdm_symbols_per_packet=self.ofdm_symbols_per_packet,
            probability_trials=max(100, int(self.probability_trials * factor)),
            flops_trials=max(1, int(self.flops_trials * factor)),
            use_sphere_for_ml=self.use_sphere_for_ml,
            ml_proxy_paths=self.ml_proxy_paths,
            seed=self.seed,
        )


PROFILES: dict[str, ExperimentProfile] = {
    "quick": ExperimentProfile(
        name="quick",
        packets_per_point=12,
        calibration_packets=12,
        subcarriers=12,
        ofdm_symbols_per_packet=2,
        probability_trials=20_000,
        flops_trials=50,
        use_sphere_for_ml=False,
        ml_proxy_paths=256,
    ),
    "medium": ExperimentProfile(
        name="medium",
        packets_per_point=60,
        calibration_packets=48,
        subcarriers=24,
        ofdm_symbols_per_packet=4,
        probability_trials=200_000,
        flops_trials=300,
        use_sphere_for_ml=False,
        ml_proxy_paths=512,
    ),
    "full": ExperimentProfile(
        name="full",
        packets_per_point=400,
        calibration_packets=200,
        subcarriers=48,
        ofdm_symbols_per_packet=4,
        probability_trials=2_000_000,
        flops_trials=2000,
        use_sphere_for_ml=True,
        ml_proxy_paths=1024,
    ),
}


def get_profile(profile: "str | ExperimentProfile | None" = None) -> ExperimentProfile:
    """Resolve a profile argument (or the REPRO_PROFILE env var)."""
    if isinstance(profile, ExperimentProfile):
        return profile
    name = profile or os.environ.get("REPRO_PROFILE", "quick")
    try:
        return PROFILES[name]
    except KeyError:
        raise ExperimentError(
            f"unknown profile {name!r}; options: {sorted(PROFILES)}"
        ) from None


@dataclass
class ExperimentResult:
    """A reproduced table/figure: rows of dicts plus provenance."""

    experiment: str
    title: str
    profile: str
    columns: list
    rows: list = field(default_factory=list)
    notes: list = field(default_factory=list)
    #: Execution-substrate accounting that is not part of the table
    #: itself (e.g. the streaming scheduler's deadline telemetry, the
    #: governor's control summary); persisted by :meth:`save_json`.
    runtime: dict = field(default_factory=dict)
    #: The effective :class:`repro.api.StackConfig` the run executed
    #: under, as its ``to_dict()`` payload — persisted by
    #: :meth:`save_json` so every published JSON is reproducible from
    #: its own metadata (``StackConfig.from_dict(payload["config"])``).
    config: "dict | None" = None

    def add_row(self, **values) -> None:
        missing = [column for column in self.columns if column not in values]
        if missing:
            raise ExperimentError(
                f"{self.experiment}: row missing columns {missing}"
            )
        self.rows.append({column: values[column] for column in self.columns})

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def record_runtime(self, key: str, payload) -> None:
        """Attach one runtime-accounting payload to the saved report."""
        self.runtime[key] = payload

    # ------------------------------------------------------------------
    def to_text_table(self) -> str:
        """Render as a fixed-width text table (what the CLI prints)."""

        def fmt(value) -> str:
            if isinstance(value, float):
                if value == 0 or 1e-3 <= abs(value) < 1e6:
                    return f"{value:.4g}"
                return f"{value:.3e}"
            return str(value)

        header = [str(column) for column in self.columns]
        body = [[fmt(row[column]) for column in self.columns] for row in self.rows]
        widths = [
            max(len(header[i]), *(len(line[i]) for line in body))
            if body
            else len(header[i])
            for i in range(len(header))
        ]
        lines = [
            f"# {self.title} (profile: {self.profile})",
            "  ".join(header[i].ljust(widths[i]) for i in range(len(header))),
            "  ".join("-" * widths[i] for i in range(len(header))),
        ]
        for line in body:
            lines.append(
                "  ".join(line[i].ljust(widths[i]) for i in range(len(header)))
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def save_json(self, path: "str | Path") -> None:
        payload = {
            "experiment": self.experiment,
            "title": self.title,
            "profile": self.profile,
            "columns": self.columns,
            "rows": _jsonable(self.rows),
            "notes": self.notes,
        }
        if self.runtime:
            payload["runtime"] = _jsonable(self.runtime)
        if self.config is not None:
            payload["config"] = _jsonable(self.config)
        atomic_write_text(path, json.dumps(payload, indent=2))

    def column(self, name: str) -> list:
        """All values of one column, in row order."""
        return [row[name] for row in self.rows]

    def filtered(self, **predicate) -> list:
        """Rows matching all given column=value pairs."""
        return [
            row
            for row in self.rows
            if all(row.get(key) == value for key, value in predicate.items())
        ]


def _jsonable(value):
    if isinstance(value, dict):
        return {key: _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return _jsonable(value.tolist())
    return value
