"""Fleet experiment: one StackConfig farmed across worker processes.

A systems extension in the paper's spirit: §6 runs FlexCore distributed
across machines, and the config-first API makes the distribution story
declarative — :class:`~repro.farm.FarmCoordinator` splits one
:class:`~repro.api.StackConfig` across worker processes, ships each the
*serialized* slice, and supervises the fleet.  This experiment measures
what that buys:

* **scaling** — the same seeded scenario, unpaced, at 1..N workers; the
  throughput column is directly comparable because the work partition
  is exact (every worker derives the same demand table and serves only
  its own cells);
* **recovery** — the same run with a scripted SIGKILL of one worker
  mid-scenario; the coordinator re-spawns it from its config slice,
  replays the lost chunk, and the merged telemetry records the restart.

On a single-CPU host the scaling rows still run (the coordinator is
correct regardless); they just cannot show speedup — the bench lane
(``benchmarks/test_bench_farm.py``) asserts the scaling floor only
where cores exist.
"""

from __future__ import annotations

import os

from repro.api import (
    BackendSpec,
    DetectorSpec,
    FarmSpec,
    GovernorSpec,
    SchedulerSpec,
    StackConfig,
)
from repro.control.workload import SCENARIOS, WorkloadScenario
from repro.errors import ConfigurationError, ExperimentError
from repro.experiments.common import ExperimentResult, get_profile
from repro.farm import FarmCoordinator
from repro.mimo.model import noise_variance_for_snr_db
from repro.ofdm.lte import SYMBOLS_PER_SLOT

PATHS_MIN = 2
PATHS_MAX = 32
SNR_DB = 20.0


def _effective_config(
    stack_config: "StackConfig | None", backend: str, cells: int
) -> StackConfig:
    """The fleet stack this run partitions: explicit config or defaults.

    Defaults stay deliberately light (4x4, 32 paths, serial in-worker
    backend): each worker is already its own process, so the fleet's
    parallelism comes from the coordinator, not nested pools.
    """
    if stack_config is not None:
        if not stack_config.farm.streaming:
            raise ExperimentError(
                "the fleet experiment needs a streaming farm config"
            )
        if stack_config.detector is None:
            raise ExperimentError(
                "the fleet experiment needs config.detector set"
            )
        return stack_config
    cells = max(2, int(cells))
    return StackConfig(
        detector=DetectorSpec(
            "flexcore", 4, 4, 16, params={"num_paths": PATHS_MAX}
        ),
        backend=BackendSpec(backend),
        farm=FarmSpec(streaming=True, cells=cells),
        scheduler=SchedulerSpec(batch_target=SYMBOLS_PER_SLOT),
        governor=GovernorSpec(
            policy="aimd",
            paths_min=PATHS_MIN,
            paths_max=PATHS_MAX,
            total_path_budget=cells * (PATHS_MAX // 2),
        ),
    )


def run(
    profile=None,
    workload: str = "steady",
    workers: int = 2,
    backend: str = "serial",
    cells: int = 4,
    stack_config: "StackConfig | None" = None,
) -> ExperimentResult:
    """Worker-count scaling + kill-recovery for the farm coordinator.

    ``workers`` is the largest fleet measured (1..workers all run);
    ``cells`` sizes the default farm (an explicit ``stack_config`` is
    authoritative).  The kill-recovery row re-runs the largest fleet
    with worker 0 SIGKILLed mid-scenario.
    """
    profile = get_profile(profile)
    if workload not in SCENARIOS:
        raise ExperimentError(
            f"unknown workload {workload!r}; options: {', '.join(SCENARIOS)}"
        )
    if workers < 1:
        raise ExperimentError("workers must be >= 1")
    try:
        config = _effective_config(stack_config, backend, cells)
    except ConfigurationError as error:
        raise ExperimentError(str(error)) from error
    if workers > config.farm.cells:
        raise ExperimentError(
            f"workers={workers} exceeds the farm's {config.farm.cells} "
            "cells"
        )
    subcarriers = min(profile.subcarriers, 6)
    slots = max(8, min(24, profile.packets_per_point))
    scenario = WorkloadScenario(
        scenario=workload,
        cells=config.farm.cell_ids(),
        slots=slots,
        subcarriers=subcarriers,
        seed=profile.seed,
    )
    noise_var = noise_variance_for_snr_db(SNR_DB)

    result = ExperimentResult(
        experiment="fleet",
        title="Multi-process farm: worker scaling and crash recovery",
        profile=profile.name,
        columns=[
            "mode",
            "workers",
            "scenario",
            "frames_offered",
            "frames_detected",
            "hit_rate",
            "throughput_fps",
            "speedup",
            "restarts",
        ],
        config=config.to_dict(),
    )

    def fleet_run(count: int, kill_script=None):
        with FarmCoordinator(
            config, count, kill_script=kill_script
        ) as coordinator:
            return coordinator.run(
                scenario, noise_var, slot_interval_s=0.0
            )

    base_throughput = None
    for count in range(1, workers + 1):
        report = fleet_run(count)
        if base_throughput is None:
            base_throughput = report.throughput_fps or 1.0
        result.add_row(
            mode="scale",
            workers=count,
            scenario=workload,
            frames_offered=report.frames_offered,
            frames_detected=report.frames_detected,
            hit_rate=report.hit_rate,
            throughput_fps=report.throughput_fps,
            speedup=report.throughput_fps / base_throughput,
            restarts=len(report.restarts),
        )
        result.record_runtime(f"fleet_{count}_workers", report.as_dict())

    if workers >= 2:
        # Kill worker 0 right after the second chunk is dispatched to
        # it; the coordinator must re-spawn from the config slice,
        # replay the chunk, and finish the scenario.
        report = fleet_run(workers, kill_script={0: 1})
        if not report.restarts:
            raise ExperimentError(
                "scripted worker kill produced no recorded restart"
            )
        result.add_row(
            mode="kill-recovery",
            workers=workers,
            scenario=workload,
            frames_offered=report.frames_offered,
            frames_detected=report.frames_detected,
            hit_rate=report.hit_rate,
            throughput_fps=report.throughput_fps,
            speedup=report.throughput_fps / (base_throughput or 1.0),
            restarts=len(report.restarts),
        )
        result.record_runtime("fleet_kill_recovery", report.as_dict())

    result.add_note(
        f"{config.farm.cells} cells x {subcarriers} subcarriers x "
        f"{SYMBOLS_PER_SLOT} symbols/slot, unpaced (throughput mode); "
        "workers rebuild their stack slice from the serialized "
        "StackConfig"
    )
    cpus = len(os.sched_getaffinity(0)) if hasattr(
        os, "sched_getaffinity"
    ) else (os.cpu_count() or 1)
    result.add_note(
        f"host exposes {cpus} usable CPU(s); speedup needs as many "
        "cores as workers"
    )
    if workers >= 2:
        result.add_note(
            "kill-recovery row: worker 0 SIGKILLed mid-scenario, "
            "re-spawned from its config slice, lost chunk replayed "
            "(restart count is in the restarts column)"
        )
    return result
