"""Table 2: pre-processing / detection complexity and parallelizability.

Counts real multiplications for (a) the channel-triggered QR / channel
inversion, (b) FlexCore's pre-processing tree search and (c) FlexCore's
parallel detection — for 8x8 and 12x12 64-QAM at N_PE in {32, 128} — plus
the parallelizability row (pre-processing parallelises in batches of
N_PE/10 per §3.1.1; detection is one path per PE).
"""

from __future__ import annotations


from repro.channel.fading import rayleigh_channel
from repro.experiments.common import ExperimentResult, get_profile
from repro.flexcore.detector import FlexCoreDetector
from repro.mimo.model import apply_channel, noise_variance_for_snr_db
from repro.mimo.system import MimoSystem
from repro.modulation.constellation import QamConstellation
from repro.modulation.mapper import random_symbol_indices
from repro.utils.flops import FlopCounter
from repro.utils.rng import as_rng

SNR_DB = 21.6  # the paper's 64-QAM PER_ML = 0.01 operating point
PAPER = {
    (8, 32): {"preproc": 102, "detect": 4608},
    (8, 128): {"preproc": 301, "detect": 18432},
    (12, 32): {"preproc": 136, "detect": 9984},
    (12, 128): {"preproc": 391, "detect": 39936},
}


def measure_complexity(
    num_streams: int, num_paths: int, trials: int, seed: int
) -> dict:
    """Average pre-processing and per-vector detection multiplications."""
    generator = as_rng(seed)
    system = MimoSystem(num_streams, num_streams, QamConstellation(64))
    noise_var = noise_variance_for_snr_db(SNR_DB)
    detector = FlexCoreDetector(system, num_paths=num_paths)
    preproc_mults = 0
    detect_mults = 0
    vectors = 0
    for _ in range(trials):
        channel = rayleigh_channel(num_streams, num_streams, generator)
        context = detector.prepare(channel, noise_var)
        preproc_mults += context.preprocessing.real_multiplications
        indices = random_symbol_indices(2, num_streams, system.constellation, generator)
        received = apply_channel(
            channel, system.constellation.points[indices], noise_var, generator
        )
        counter = FlopCounter()
        detector.detect_prepared(context, received, counter=counter)
        detect_mults += counter.real_mults
        vectors += indices.shape[0]
    return {
        "preproc": preproc_mults / trials,
        "detect": detect_mults / vectors,
    }


def run(profile=None) -> ExperimentResult:
    profile = get_profile(profile)
    result = ExperimentResult(
        experiment="table2",
        title="Table 2: complexity in real multiplications and "
        "parallelizability (64-QAM)",
        profile=profile.name,
        columns=[
            "system",
            "num_pes",
            "qr_mults",
            "preproc_mults",
            "detect_mults",
            "preproc_parallel",
            "detect_parallel",
            "paper_preproc",
            "paper_detect",
        ],
    )
    trials = max(10, profile.flops_trials // 10)
    for num_streams in (8, 12):
        for num_pes in (32, 128):
            measured = measure_complexity(
                num_streams, num_pes, trials, profile.seed + num_streams + num_pes
            )
            paper = PAPER[(num_streams, num_pes)]
            result.add_row(
                system=f"{num_streams}x{num_streams}",
                num_pes=num_pes,
                qr_mults=4 * num_streams**3,
                preproc_mults=measured["preproc"],
                detect_mults=measured["detect"],
                preproc_parallel=max(num_pes // 10, 1),
                detect_parallel=num_pes,
                paper_preproc=paper["preproc"],
                paper_detect=paper["detect"],
            )
    result.add_note(
        "QR cost uses the paper's ~4*Nt^3 real-multiplication convention; "
        "pre-processing parallelizability is N_PE/10 (the §3.1.1 batch rule)"
    )
    return result
