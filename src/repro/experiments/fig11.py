"""Fig. 11: FlexCore's GPU speedup over the GPU FCSD baseline.

Uses the analytic SIMT model of :mod:`repro.parallel.gpu` (the GTX 970
substitute): for 12x12 64-QAM, FlexCore's kernel+transfer time at ``|E|``
paths is compared against FCSD fully expanding L in {1, 2} levels, for
``Nsc`` in {64, 1024, 16384} subcarriers processed in parallel; the
OpenMP CPU reference lines (1/2/4/8 threads) complete the figure.

Reproduced claims: speedup grows as |E| shrinks (up to ~19x at |E|=128 vs
L=2); larger ``Nsc`` saturates occupancy and maximises speedup; GPU-FCSD
is >~21x faster than 8-thread CPU FCSD.
"""

from __future__ import annotations


from repro.experiments.common import ExperimentResult, get_profile
from repro.mimo.system import MimoSystem
from repro.modulation.constellation import QamConstellation
from repro.parallel.gpu import CpuOpenMpModel, GpuExecutionModel

PATH_COUNTS = (8, 16, 32, 64, 128, 256, 512, 1024)
SUBCARRIER_COUNTS = (64, 1024, 16384)
EXPANSION_LEVELS = (1, 2)
OPENMP_THREADS = (1, 2, 4, 8)


def run(profile=None) -> ExperimentResult:
    profile = get_profile(profile)
    system = MimoSystem(12, 12, QamConstellation(64))
    gpu = GpuExecutionModel()
    cpu = CpuOpenMpModel()
    result = ExperimentResult(
        experiment="fig11",
        title="Fig. 11: speedup vs GPU-based FCSD (12x12, 64-QAM)",
        profile=profile.name,
        columns=["series", "expansion", "nsc", "num_paths", "speedup"],
    )
    for level in EXPANSION_LEVELS:
        for nsc in SUBCARRIER_COUNTS:
            baseline = gpu.fcsd_detection_time(system, level, nsc, streams=1)
            for paths in PATH_COUNTS:
                flexcore = gpu.detection_time(
                    system, paths, nsc, "flexcore", streams=1
                )
                result.add_row(
                    series=f"flexcore_nsc{nsc}",
                    expansion=level,
                    nsc=nsc,
                    num_paths=paths,
                    speedup=baseline / flexcore,
                )
        # CPU OpenMP reference lines (relative to the same GPU baseline),
        # evaluated at the high-occupancy subcarrier count.
        nsc_reference = SUBCARRIER_COUNTS[1]
        baseline = gpu.fcsd_detection_time(system, level, nsc_reference, streams=1)
        fcsd_paths = system.constellation.order**level
        for threads in OPENMP_THREADS:
            cpu_time = cpu.detection_time(
                system, fcsd_paths, nsc_reference, num_threads=threads
            )
            result.add_row(
                series=f"openmp_{threads}",
                expansion=level,
                nsc=nsc_reference,
                num_paths=fcsd_paths,
                speedup=baseline / cpu_time,
            )
    gpu_vs_cpu8 = (
        cpu.detection_time(system, 64, 1024, num_threads=8)
        / gpu.fcsd_detection_time(system, 1, 1024, streams=1)
    )
    result.add_note(
        f"GPU FCSD vs OpenMP-8 FCSD speedup at L=1, Nsc=1024: "
        f"{gpu_vs_cpu8:.1f}x (paper: >=21x)"
    )
    peak = max(
        row["speedup"]
        for row in result.rows
        if row["series"].startswith("flexcore") and row["expansion"] == 2
        and row["num_paths"] == 128
    )
    result.add_note(
        f"FlexCore |E|=128 vs FCSD L=2 speedup: {peak:.1f}x (paper: 19x)"
    )
    return result
