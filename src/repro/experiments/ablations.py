"""Ablation studies for the design choices DESIGN.md calls out.

Not a paper artefact — these quantify the contribution of individual
FlexCore design decisions on top of the reproduction:

* triangle LUT vs exact per-level sorting (accuracy cost of the
  approximation vs its complexity saving);
* QR ordering variants (plain / Wübben-sorted / FCSD);
* parallel pre-processing batch size (the N_PE/B >= 10 rule);
* corrected vs verbatim Eq. 4 probability constants.
"""

from __future__ import annotations

import numpy as np

from repro.channel.fading import rayleigh_channel
from repro.experiments.common import ExperimentResult, get_profile
from repro.flexcore.detector import FlexCoreDetector
from repro.mimo.model import apply_channel, noise_variance_for_snr_db
from repro.mimo.system import MimoSystem
from repro.modulation.constellation import QamConstellation
from repro.modulation.mapper import random_symbol_indices
from repro.utils.rng import as_rng


def _vector_error_rate(
    detector, system, snr_db, trials, seed, vectors_per_channel=8
) -> float:
    generator = as_rng(seed)
    noise_var = noise_variance_for_snr_db(snr_db)
    errors = 0
    total = 0
    channels = max(trials // vectors_per_channel, 1)
    for _ in range(channels):
        channel = rayleigh_channel(
            system.num_rx_antennas, system.num_streams, generator
        )
        indices = random_symbol_indices(
            vectors_per_channel, system.num_streams, system.constellation,
            generator,
        )
        received = apply_channel(
            channel, system.constellation.points[indices], noise_var, generator
        )
        detected = detector.detect(channel, received, noise_var).indices
        errors += int(np.count_nonzero((detected != indices).any(axis=1)))
        total += vectors_per_channel
    return errors / total


def run(profile=None) -> ExperimentResult:
    profile = get_profile(profile)
    system = MimoSystem(8, 8, QamConstellation(16))
    snr_db = 15.0
    trials = max(profile.flops_trials * 4, 200)
    result = ExperimentResult(
        experiment="ablations",
        title="Ablations: FlexCore design choices (8x8 16-QAM, 15 dB, "
        "64 paths)",
        profile=profile.name,
        columns=["ablation", "variant", "vector_error_rate"],
    )

    variants = {
        "ordering": {
            "triangle_lut": FlexCoreDetector(system, 64),
            "exact_sort": FlexCoreDetector(system, 64, use_exact_ordering=True),
        },
        "qr_method": {
            "sorted": FlexCoreDetector(system, 64, qr_method="sorted"),
            "fcsd": FlexCoreDetector(system, 64, qr_method="fcsd"),
            "plain": FlexCoreDetector(system, 64, qr_method="plain"),
        },
        "pe_formula": {
            "corrected": FlexCoreDetector(system, 64, pe_formula="corrected"),
            "paper_literal": FlexCoreDetector(system, 64, pe_formula="paper"),
        },
        "batch_expansion": {
            "sequential": FlexCoreDetector(system, 64, batch_expansion=1),
            "batch_6(NPE/B~10)": FlexCoreDetector(system, 64, batch_expansion=6),
            "batch_32(NPE/B=2)": FlexCoreDetector(system, 64, batch_expansion=32),
        },
    }
    for ablation, table in variants.items():
        for variant, detector in table.items():
            rate = _vector_error_rate(
                detector, system, snr_db, trials, profile.seed
            )
            result.add_row(
                ablation=ablation, variant=variant, vector_error_rate=rate
            )
    return result
