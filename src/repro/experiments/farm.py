"""AP-farm control-plane experiment: governed vs ungoverned under load.

Not a figure of the paper — a systems extension in its spirit: §5.2
frames detection against the LTE 500 µs slot budget, and §3.3's adaptive
FlexCore picks path counts from channel conditions.  This experiment
paces a seeded traffic scenario (:mod:`repro.control.workload`) through
the streaming cell farm twice — once ungoverned at the detector's full
path budget, once under a :class:`~repro.control.ComputeGovernor` — at a
slot interval deliberately calibrated into overload, and tabulates what
each run did with the same offered load: deadline hit-rate, sheds, flush
count, and the budget the governor actually ran at.

The whole stack — detector, backend, cell farm, governor — is described
by one :class:`repro.api.StackConfig` (the ``"farm-overload"`` preset is
this experiment's default shape) and assembled through
:func:`repro.api.build_stack`; the effective config is embedded in the
saved result, so a published JSON reproduces its own farm.

The interesting outcome (benchmarked harder in
``benchmarks/test_bench_governor.py``): the ungoverned farm burns its
entire budget missing deadlines, while the governed farm trades paths —
accuracy the channel may not even need — for slots that arrive on time.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.api import (
    BackendSpec,
    DetectorSpec,
    FarmSpec,
    GovernorSpec,
    SchedulerSpec,
    StackConfig,
    build_stack,
)
from repro.channel.fading import rayleigh_channels
from repro.control import POLICY_NAMES, WorkloadScenario
from repro.control.workload import SCENARIOS
from repro.errors import ConfigurationError, ExperimentError
from repro.experiments.common import ExperimentResult, get_profile
from repro.mimo.model import noise_variance_for_snr_db
from repro.modulation.constellation import QamConstellation
from repro.ofdm.lte import SYMBOLS_PER_SLOT

#: Path-budget range the governed run may move within.
PATHS_MIN = 2
PATHS_MAX = 128
#: Offered-load dial: slot interval = OVERLOAD x full-budget slot cost.
OVERLOAD = 0.6
SNR_DB = 20.0


def make_policy(
    name: str,
    constellation: QamConstellation,
    peak_frames: "int | None" = None,
):
    """The governed run's policy prototype, by CLI name.

    Kept as the pre-``repro.api`` surface; equivalent to
    ``GovernorSpec(policy=name, ...).build_policy(constellation)``.
    """
    if name not in POLICY_NAMES:
        raise ExperimentError(
            f"unknown governor policy {name!r}; options: "
            f"{', '.join(POLICY_NAMES)}"
        )
    return GovernorSpec(
        policy=name,
        paths_min=PATHS_MIN,
        paths_max=PATHS_MAX,
        peak_frames_hint=peak_frames,
    ).build_policy(constellation)


def _effective_config(
    stack_config: "StackConfig | None",
    governor: str,
    backend: str,
    cells: int,
    subcarriers: int,
) -> StackConfig:
    """The farm stack this run executes: explicit config, or defaults.

    An explicit config must describe a governed streaming farm with a
    detector; missing pieces are filled with this experiment's defaults
    so a runtime-only config (e.g. flags layered by the runner) still
    runs the reference farm.
    """
    explicit = stack_config is not None
    if not explicit:
        stack_config = StackConfig(backend=BackendSpec(backend))
    detector = stack_config.detector or DetectorSpec(
        "flexcore", 8, 8, 16, params={"num_paths": PATHS_MAX}
    )
    if explicit and stack_config.farm.streaming:
        farm = stack_config.farm
    else:
        farm = FarmSpec(streaming=True, cells=max(1, int(cells)))
    governor_spec = stack_config.governor or GovernorSpec(
        policy=governor,
        paths_min=PATHS_MIN,
        paths_max=PATHS_MAX,
        peak_frames_hint=subcarriers * SYMBOLS_PER_SLOT,
    )
    scheduler = stack_config.scheduler
    if scheduler == SchedulerSpec():
        scheduler = SchedulerSpec(batch_target=SYMBOLS_PER_SLOT)
    return replace(
        stack_config,
        detector=detector,
        farm=farm,
        scheduler=scheduler,
        governor=governor_spec,
    )


def run(
    profile=None,
    governor: str = "aimd",
    workload: str = "bursty",
    backend: str = "array",
    cells: int = 2,
    stack_config: "StackConfig | None" = None,
) -> ExperimentResult:
    """Governed vs ungoverned farm on one seeded traffic scenario.

    ``governor`` picks the governed run's policy (``static`` / ``aimd``
    / ``snr``), ``workload`` the scenario shape (see
    :data:`repro.control.workload.SCENARIOS`); the ungoverned baseline
    always runs alongside for the comparison.  ``stack_config`` (e.g.
    the ``"farm-overload"`` preset, or the runner's ``--config``) is
    authoritative over the individual flags.
    """
    profile = get_profile(profile)
    if workload not in SCENARIOS:
        raise ExperimentError(
            f"unknown workload {workload!r}; options: {', '.join(SCENARIOS)}"
        )
    rng = np.random.default_rng(profile.seed)
    subcarriers = min(profile.subcarriers, 8)
    slots = max(6, min(40, profile.packets_per_point))
    try:
        config = _effective_config(
            stack_config, governor, backend, cells, subcarriers
        )
    except ConfigurationError as error:
        raise ExperimentError(str(error)) from error
    # 8x8 16-QAM on the stacked tensor-walk backend by default: the path
    # budget dominates the flush cost, giving the governor a wide dial.
    system = config.detector.system()
    noise_var = noise_variance_for_snr_db(SNR_DB)
    cell_ids = config.farm.cell_ids()
    cell_channels = {
        cell_id: rayleigh_channels(
            subcarriers, system.num_rx_antennas, system.num_streams, rng
        )
        for cell_id in cell_ids
    }
    scenario = WorkloadScenario(
        scenario=workload,
        cells=cell_ids,
        slots=slots,
        subcarriers=subcarriers,
        seed=profile.seed,
    )

    result = ExperimentResult(
        experiment="farm",
        title="AP-farm control plane: governed vs ungoverned under load",
        profile=profile.name,
        columns=[
            "mode",
            "policy",
            "scenario",
            "cells",
            "frames_offered",
            "frames_detected",
            "frames_shed",
            "hit_rate",
            "flushes",
            "mean_budget",
        ],
        config=config.to_dict(),
    )

    with build_stack(config) as stack:
        # The ungoverned baseline runs at the detector's own path count
        # (which a config may set differently from the governor's
        # ceiling); budget-less detectors have no dial to report.
        full_budget = getattr(
            stack.detector, "num_paths", config.governor.paths_max
        )
        slot_cost = stack.calibrate_slot_cost(
            scenario, cell_channels, noise_var
        )
        slot_interval = OVERLOAD * slot_cost

        runs = [
            ("ungoverned", "-", None),
            ("governed", config.governor.policy, stack.governor),
        ]
        for mode, policy_name, gov in runs:
            outcome, telemetry = stack.run_streaming(
                scenario,
                cell_channels,
                noise_var,
                slot_interval_s=slot_interval,
                governor=gov,
            )
            if gov is None:
                mean_budget = float(full_budget)
            elif gov.telemetry.decisions:
                budgets = [d.budget for d in gov.telemetry.decisions]
                mean_budget = float(np.mean(budgets))
            else:
                # No control tick fired before the run ended: flushes
                # ran at the lanes' current (initial) budgets.
                lanes = gov.budgets().values()
                mean_budget = (
                    float(np.mean(list(lanes))) if lanes else float(
                        gov.policy.initial_budget()
                    )
                )
            result.add_row(
                mode=mode,
                policy=policy_name,
                scenario=workload,
                cells=len(cell_ids),
                frames_offered=outcome.frames_submitted,
                frames_detected=outcome.frames_detected,
                frames_shed=outcome.frames_shed,
                hit_rate=telemetry.deadline_hit_rate,
                flushes=telemetry.flushes,
                mean_budget=mean_budget,
            )
            result.record_runtime(
                f"scheduler_{mode}", telemetry.as_dict()
            )
            if gov is not None:
                result.record_runtime("governor", gov.as_dict())

    result.add_note(
        f"slot interval calibrated to {OVERLOAD:g}x the warm full-budget "
        f"slot cost ({slot_cost * 1e3:.1f} ms) — deliberate overload at "
        f"peak demand; {len(cell_ids)} cells x {subcarriers} subcarriers "
        f"x {SYMBOLS_PER_SLOT} symbols/slot on the {config.backend.name} "
        "backend"
    )
    result.add_note(
        f"governed run: {config.governor.policy} policy, paths in "
        f"[{config.governor.paths_min}, {config.governor.paths_max}]; "
        f"ungoverned runs fixed at {full_budget} paths"
    )
    return result
