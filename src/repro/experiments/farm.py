"""AP-farm control-plane experiment: governed vs ungoverned under load.

Not a figure of the paper — a systems extension in its spirit: §5.2
frames detection against the LTE 500 µs slot budget, and §3.3's adaptive
FlexCore picks path counts from channel conditions.  This experiment
paces a seeded traffic scenario (:mod:`repro.control.workload`) through
the streaming cell farm twice — once ungoverned at the detector's full
path budget, once under a :class:`~repro.control.ComputeGovernor` — at a
slot interval deliberately calibrated into overload, and tabulates what
each run did with the same offered load: deadline hit-rate, sheds, flush
count, and the budget the governor actually ran at.

The interesting outcome (benchmarked harder in
``benchmarks/test_bench_governor.py``): the ungoverned farm burns its
entire budget missing deadlines, while the governed farm trades paths —
accuracy the channel may not even need — for slots that arrive on time.
"""

from __future__ import annotations

import numpy as np

from repro.channel.fading import rayleigh_channels
from repro.control import (
    POLICY_NAMES,
    AimdPolicy,
    ComputeGovernor,
    SnrAwarePolicy,
    StaticPolicy,
    WorkloadScenario,
    calibrate_slot_cost,
    run_paced,
)
from repro.control.workload import SCENARIOS
from repro.errors import ExperimentError
from repro.experiments.common import ExperimentResult, get_profile
from repro.flexcore.detector import FlexCoreDetector
from repro.mimo.model import noise_variance_for_snr_db
from repro.mimo.system import MimoSystem
from repro.modulation.constellation import QamConstellation
from repro.ofdm.lte import SYMBOLS_PER_SLOT
from repro.runtime import CellFarm

#: Path-budget range the governed run may move within.
PATHS_MIN = 2
PATHS_MAX = 128
#: Offered-load dial: slot interval = OVERLOAD x full-budget slot cost.
OVERLOAD = 0.6
SNR_DB = 20.0


def make_policy(
    name: str,
    constellation: QamConstellation,
    peak_frames: "int | None" = None,
):
    """The governed run's policy prototype, by CLI name."""
    if name == "static":
        return StaticPolicy(PATHS_MAX)
    if name == "aimd":
        return AimdPolicy(
            PATHS_MIN, PATHS_MAX, peak_frames_hint=peak_frames
        )
    if name == "snr":
        return SnrAwarePolicy(
            constellation, PATHS_MIN, PATHS_MAX, target_error_rate=0.05
        )
    raise ExperimentError(
        f"unknown governor policy {name!r}; options: "
        f"{', '.join(POLICY_NAMES)}"
    )


def run(
    profile=None,
    governor: str = "aimd",
    workload: str = "bursty",
    backend: str = "array",
    cells: int = 2,
) -> ExperimentResult:
    """Governed vs ungoverned farm on one seeded traffic scenario.

    ``governor`` picks the governed run's policy (``static`` / ``aimd``
    / ``snr``), ``workload`` the scenario shape (see
    :data:`repro.control.workload.SCENARIOS`); the ungoverned baseline
    always runs alongside for the comparison.
    """
    profile = get_profile(profile)
    if workload not in SCENARIOS:
        raise ExperimentError(
            f"unknown workload {workload!r}; options: {', '.join(SCENARIOS)}"
        )
    cells = max(1, int(cells))
    # 8x8 16-QAM on the stacked tensor-walk backend: the path budget
    # dominates the flush cost, giving the governor a wide dial.
    system = MimoSystem(8, 8, QamConstellation(16))
    noise_var = noise_variance_for_snr_db(SNR_DB)
    rng = np.random.default_rng(profile.seed)
    subcarriers = min(profile.subcarriers, 8)
    slots = max(6, min(40, profile.packets_per_point))
    cell_ids = tuple(f"cell{i}" for i in range(cells))
    cell_channels = {
        cell_id: rayleigh_channels(subcarriers, 8, 8, rng)
        for cell_id in cell_ids
    }
    scenario = WorkloadScenario(
        scenario=workload,
        cells=cell_ids,
        slots=slots,
        subcarriers=subcarriers,
        seed=profile.seed,
    )

    result = ExperimentResult(
        experiment="farm",
        title="AP-farm control plane: governed vs ungoverned under load",
        profile=profile.name,
        columns=[
            "mode",
            "policy",
            "scenario",
            "cells",
            "frames_offered",
            "frames_detected",
            "frames_shed",
            "hit_rate",
            "flushes",
            "mean_budget",
        ],
    )

    detector = FlexCoreDetector(system, num_paths=PATHS_MAX)
    with CellFarm(backend=backend) as farm:
        for cell_id in cell_ids:
            farm.add_cell(cell_id, detector)
        slot_cost = calibrate_slot_cost(
            farm, scenario, cell_channels, system, noise_var
        )
        slot_interval = OVERLOAD * slot_cost

        runs = [
            ("ungoverned", "-", None),
            (
                "governed",
                governor,
                ComputeGovernor(
                    make_policy(
                        governor,
                        system.constellation,
                        peak_frames=subcarriers * SYMBOLS_PER_SLOT,
                    )
                ),
            ),
        ]
        for mode, policy_name, gov in runs:
            outcome, telemetry = run_paced(
                farm,
                scenario,
                cell_channels,
                system,
                noise_var,
                slot_interval,
                governor=gov,
            )
            if gov is None:
                mean_budget = float(PATHS_MAX)
            elif gov.telemetry.decisions:
                budgets = [d.budget for d in gov.telemetry.decisions]
                mean_budget = float(np.mean(budgets))
            else:
                # No control tick fired before the run ended: flushes
                # ran at the lanes' current (initial) budgets.
                lanes = gov.budgets().values()
                mean_budget = (
                    float(np.mean(list(lanes))) if lanes else float(
                        gov.policy.initial_budget()
                    )
                )
            result.add_row(
                mode=mode,
                policy=policy_name,
                scenario=workload,
                cells=cells,
                frames_offered=outcome.frames_submitted,
                frames_detected=outcome.frames_detected,
                frames_shed=outcome.frames_shed,
                hit_rate=telemetry.deadline_hit_rate,
                flushes=telemetry.flushes,
                mean_budget=mean_budget,
            )
            result.record_runtime(
                f"scheduler_{mode}", telemetry.as_dict()
            )
            if gov is not None:
                result.record_runtime("governor", gov.as_dict())

    result.add_note(
        f"slot interval calibrated to {OVERLOAD:g}x the warm full-budget "
        f"slot cost ({slot_cost * 1e3:.1f} ms) — deliberate overload at "
        f"peak demand; {cells} cells x {subcarriers} subcarriers x "
        f"{SYMBOLS_PER_SLOT} symbols/slot on the {backend} backend"
    )
    result.add_note(
        f"governed run: {governor} policy, paths in [{PATHS_MIN}, "
        f"{PATHS_MAX}]; ungoverned runs fixed at {PATHS_MAX} paths"
    )
    return result
