"""Adaptive control plane over the streaming detection runtime.

FlexCore's flexibility — the path count as a runtime accuracy/compute
dial (§3.3) — meets the scheduler's real-time telemetry (PR 3) here:

* :mod:`repro.control.policy` — the control laws: static, AIMD on
  deadline misses, and the SNR-aware minimum-budget policy built on the
  :mod:`repro.flexcore.probability` level-error model, plus the global
  path-budget water-filling allocator;
* :mod:`repro.control.governor` — :class:`ComputeGovernor`, the
  closed-loop governor the scheduler consults per flush and ticks per
  control interval, escalating to admission control (load shedding)
  when the floor budget cannot meet the slot deadline;
* :mod:`repro.control.workload` — seeded traffic scenario generation
  (steady, Poisson, bursty, diurnal, flash-crowd) and the pacing driver
  that exercises a governed farm against those shapes.
"""

from repro.control.governor import (
    ComputeGovernor,
    GovernorDecision,
    GovernorTelemetry,
)
from repro.control.policy import (
    POLICY_NAMES,
    AimdPolicy,
    CellObservation,
    PathBudgetPolicy,
    SnrAwarePolicy,
    StaticPolicy,
    allocate_budget,
)
from repro.control.workload import (
    SCENARIOS,
    ScenarioOutcome,
    WorkloadScenario,
    calibrate_slot_cost,
    pace_scenario,
    run_paced,
    slot_arrivals,
)

__all__ = [
    "AimdPolicy",
    "CellObservation",
    "ComputeGovernor",
    "GovernorDecision",
    "GovernorTelemetry",
    "PathBudgetPolicy",
    "POLICY_NAMES",
    "SCENARIOS",
    "ScenarioOutcome",
    "SnrAwarePolicy",
    "StaticPolicy",
    "WorkloadScenario",
    "allocate_budget",
    "calibrate_slot_cost",
    "pace_scenario",
    "run_paced",
    "slot_arrivals",
]
