"""The closed-loop compute governor over the streaming runtime.

PR 3's scheduler *measures* the real-time contract (per-flush latency,
deadline hits) but never acts on it: under overload it misses slots,
under light load it leaves accuracy on the table.  The
:class:`ComputeGovernor` closes the loop — the software control plane
van der Perre et al. (arXiv:1807.05882) argue massive-MIMO basebands
need to stay inside a compute/power envelope, in the spirit of RaPro's
(arXiv:1704.04573) control layer over a PHY pipeline:

* the :class:`~repro.runtime.scheduler.StreamingScheduler` feeds it
  every :class:`~repro.runtime.scheduler.FlushRecord` (plus the flushed
  channel, for SNR-aware policies) and asks it for the current per-cell
  path budget before each service call;
* once per **control tick** the governor assembles a
  :class:`~repro.control.policy.CellObservation` per cell, runs that
  cell's :class:`~repro.control.policy.PathBudgetPolicy`, optionally
  fits the answers under a global path budget
  (:func:`~repro.control.policy.allocate_budget`), and installs the new
  budgets — which take effect on the very next flush;
* when a cell is already at its floor budget and still missing
  deadlines, no budget cut can save the slot: the governor escalates to
  **admission control**, shedding that cell's new arrivals (each shed
  future fails with :class:`~repro.errors.LoadShedError`) until a
  control window passes clean again.  Shedding a minority of slots
  explicitly beats missing all of them silently.

The governor is clock-free (the scheduler passes ``now`` into every
call), so control behaviour is simulation-testable without asyncio.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.control.policy import (
    CellObservation,
    PathBudgetPolicy,
    allocate_budget,
)
from repro.errors import ConfigurationError
from repro.obs import NULL_TRACER, SPAN_GOVERNOR_TICK


@dataclass(frozen=True)
class GovernorDecision:
    """One cell's outcome of one control tick."""

    tick: int
    time_s: float
    cell: str
    budget: int
    frames: int
    frames_late: int
    frames_shed: int
    deadline_hit_rate: float
    shedding: bool


@dataclass
class GovernorTelemetry:
    """Control-plane counters: ticks, budget moves, shed episodes."""

    ticks: int = 0
    budget_increases: int = 0
    budget_decreases: int = 0
    sheds_started: int = 0
    sheds_ended: int = 0
    frames_shed: int = 0
    decisions: list = field(default_factory=list)
    max_decisions: int = 4096
    decisions_dropped: int = 0

    def record(self, decision: GovernorDecision) -> None:
        if len(self.decisions) < self.max_decisions:
            self.decisions.append(decision)
        else:
            self.decisions_dropped += 1

    def budget_trajectory(self, cell: str) -> "list[int]":
        """The recorded budget sequence of one cell, tick order."""
        return [d.budget for d in self.decisions if d.cell == cell]

    def as_dict(self) -> dict:
        return {
            "ticks": self.ticks,
            "budget_increases": self.budget_increases,
            "budget_decreases": self.budget_decreases,
            "sheds_started": self.sheds_started,
            "sheds_ended": self.sheds_ended,
            "frames_shed": self.frames_shed,
            "decisions_dropped": self.decisions_dropped,
        }


class _Lane:
    """Per-cell control state: the policy instance plus one window."""

    def __init__(self, cell_id: str, policy: PathBudgetPolicy):
        self.cell_id = cell_id
        self.policy = policy
        self.budget = policy.initial_budget()
        self.shedding = False
        self.shed_streak = 0  # arrivals seen since shedding began
        self.channel: "np.ndarray | None" = None
        self.noise_var: "float | None" = None
        self.peak_flush_frames = 0  # lifetime, not per window
        self.reset_window()

    def reset_window(self) -> None:
        self.frames = 0
        self.flushes = 0
        self.frames_on_time = 0
        self.frames_late = 0
        self.frames_shed = 0
        self.latency_sum_s = 0.0
        self.latency_max_s = 0.0
        self.service_sum_s = 0.0

    def observation(self, slot_budget_s: float) -> CellObservation:
        return CellObservation(
            cell_id=self.cell_id,
            budget=self.budget,
            frames=self.frames,
            flushes=self.flushes,
            frames_on_time=self.frames_on_time,
            frames_late=self.frames_late,
            frames_shed=self.frames_shed,
            mean_latency_s=(
                self.latency_sum_s / self.flushes if self.flushes else 0.0
            ),
            max_latency_s=self.latency_max_s,
            service_sum_s=self.service_sum_s,
            peak_flush_frames=self.peak_flush_frames,
            slot_budget_s=slot_budget_s,
            channel=self.channel,
            noise_var=self.noise_var,
        )


class ComputeGovernor:
    """Load-aware path-budget governor with admission control.

    Parameters
    ----------
    policy:
        The :class:`~repro.control.policy.PathBudgetPolicy` prototype;
        every cell gets its own :meth:`~PathBudgetPolicy.clone` so
        stateful policies (AIMD) never share state across cells.
    control_interval_s:
        Spacing of control ticks.  ``None`` (default) ticks once per
        slot budget (learned from the scheduler it attaches to); ``0``
        ticks on every opportunity the scheduler offers — the
        fastest-reacting, most expensive setting.
    slot_budget_s:
        Deadline budget observations are framed against.  Normally left
        ``None`` and bound by the scheduler on attach.
    total_path_budget:
        Optional global budget: the sum of awarded per-cell budgets
        never exceeds it (see
        :func:`~repro.control.policy.allocate_budget`).
    shed_below / resume_above:
        Admission-control hysteresis: a cell at its floor budget whose
        window hit-rate falls below ``shed_below`` starts shedding.
        While shedding, every ``probe_every``-th arrival is still
        admitted as a *probe*; the cell resumes only when a window's
        probes meet their deadlines at ``resume_above`` or better (or
        the window was completely idle — nothing offered, nothing to
        shed).
    probe_every:
        Probe cadence during shedding (1 admits everything — shedding
        disabled in effect; large values probe rarely and recover
        slowly).
    """

    #: Span tracer control ticks record under; the scheduler (or
    #: ``build_stack``) swaps in a live one when observability is on.
    tracer = NULL_TRACER

    def __init__(
        self,
        policy: PathBudgetPolicy,
        control_interval_s: "float | None" = None,
        slot_budget_s: "float | None" = None,
        total_path_budget: "int | None" = None,
        shed_below: float = 0.5,
        resume_above: float = 0.95,
        probe_every: int = 8,
    ):
        if not isinstance(policy, PathBudgetPolicy):
            raise ConfigurationError(
                "ComputeGovernor needs a PathBudgetPolicy, got "
                f"{type(policy).__name__}"
            )
        if control_interval_s is not None and control_interval_s < 0:
            raise ConfigurationError(
                "control_interval_s must be >= 0"
            )
        if total_path_budget is not None and total_path_budget < 1:
            raise ConfigurationError("total_path_budget must be >= 1")
        if not 0.0 <= shed_below <= 1.0:
            raise ConfigurationError("shed_below must lie in [0, 1]")
        if not 0.0 <= resume_above <= 1.0:
            raise ConfigurationError("resume_above must lie in [0, 1]")
        if probe_every < 1:
            raise ConfigurationError("probe_every must be >= 1")
        self.policy = policy
        self.control_interval_s = control_interval_s
        self.slot_budget_s = slot_budget_s
        self.total_path_budget = total_path_budget
        self.shed_below = float(shed_below)
        self.resume_above = float(resume_above)
        self.probe_every = int(probe_every)
        self.telemetry = GovernorTelemetry()
        self._lanes: "dict[str, _Lane]" = {}
        self._last_tick_s: "float | None" = None
        self._slot_budget_from_scheduler = False

    # ------------------------------------------------------------------
    def _lane(self, cell_id: str) -> _Lane:
        lane = self._lanes.get(cell_id)
        if lane is None:
            lane = _Lane(cell_id, self.policy.clone())
            self._lanes[cell_id] = lane
        return lane

    @property
    def _interval_s(self) -> float:
        if self.control_interval_s is not None:
            return self.control_interval_s
        if self.slot_budget_s is not None and math.isfinite(
            self.slot_budget_s
        ):
            return self.slot_budget_s
        return 0.0

    # -- scheduler-facing hooks ----------------------------------------
    def bind_slot_budget(self, slot_budget_s: float) -> None:
        """Adopt the attaching scheduler's deadline frame of reference.

        A value the *operator* configured at construction is never
        overwritten; a value learned from a previous scheduler is — so
        a governor reused across schedulers (e.g. an engine's governor
        surviving many ``detect_batch`` calls, then attached to a
        real-time farm) always judges observations against the budget
        currently in force.
        """
        if self.slot_budget_s is None or self._slot_budget_from_scheduler:
            self.slot_budget_s = slot_budget_s
            self._slot_budget_from_scheduler = True

    def path_budget(self, cell_id: str) -> int:
        """The budget the next flush of ``cell_id`` should run at."""
        return self._lane(cell_id).budget

    def admit(self, cell_id: str, frames: int, now: float) -> bool:
        """Admission control: False means shed this arrival.

        While shedding, every ``probe_every``-th arrival is still let
        through — the probe traffic whose deadline fate decides whether
        the cell may resume (see ``resume_above``).
        """
        lane = self._lane(cell_id)
        if lane.shedding:
            lane.shed_streak += 1
            if lane.shed_streak % self.probe_every == 0:
                return True  # probe
            lane.frames_shed += frames
            self.telemetry.frames_shed += frames
            return False
        return True

    def observe_flush(
        self,
        cell_id: str,
        record,
        frames_on_time: "int | None" = None,
        channel: "np.ndarray | None" = None,
        noise_var: "float | None" = None,
    ) -> None:
        """Account one :class:`~repro.runtime.scheduler.FlushRecord`."""
        lane = self._lane(cell_id)
        if frames_on_time is None:
            frames_on_time = record.frames if record.deadline_met else 0
        lane.frames += record.frames
        lane.flushes += 1
        lane.frames_on_time += frames_on_time
        lane.frames_late += record.frames - frames_on_time
        lane.latency_sum_s += record.latency_s
        lane.latency_max_s = max(lane.latency_max_s, record.latency_s)
        lane.service_sum_s += record.completed_s - record.flushed_s
        lane.peak_flush_frames = max(lane.peak_flush_frames, record.frames)
        if channel is not None:
            lane.channel = channel
            lane.noise_var = noise_var

    def maybe_tick(self, now: float) -> bool:
        """Run a control tick if the interval elapsed; returns whether."""
        if self._last_tick_s is None:
            self._last_tick_s = now
            return False
        if now - self._last_tick_s < self._interval_s:
            return False
        self.tick(now)
        return True

    # -- the control law ------------------------------------------------
    def tick(self, now: float) -> None:
        """One control step over every known cell."""
        if not self.tracer.enabled:
            self._tick(now)
            return
        with self.tracer.span(SPAN_GOVERNOR_TICK) as span:
            self._tick(now)
            span.set(
                tick=self.telemetry.ticks,
                budgets={
                    cell_id: lane.budget
                    for cell_id, lane in self._lanes.items()
                },
                shedding=[
                    cell_id
                    for cell_id, lane in self._lanes.items()
                    if lane.shedding
                ],
            )

    def _tick(self, now: float) -> None:
        self._last_tick_s = now
        self.telemetry.ticks += 1
        slot_budget = (
            self.slot_budget_s if self.slot_budget_s is not None else math.inf
        )
        desired: "dict[str, int]" = {}
        observations: "dict[str, CellObservation]" = {}
        for cell_id, lane in self._lanes.items():
            observation = lane.observation(slot_budget)
            observations[cell_id] = observation
            desired[cell_id] = lane.policy.update(observation)
        if self.total_path_budget is not None and desired:
            floors = {
                cell_id: lane.policy.paths_min
                for cell_id, lane in self._lanes.items()
            }
            desired = allocate_budget(
                desired, self.total_path_budget, floors
            )
        for cell_id, lane in self._lanes.items():
            observation = observations[cell_id]
            budget = desired[cell_id]
            if budget > lane.budget:
                self.telemetry.budget_increases += 1
            elif budget < lane.budget:
                self.telemetry.budget_decreases += 1
            lane.budget = budget
            self._update_shedding(lane, observation, budget)
            self.telemetry.record(
                GovernorDecision(
                    tick=self.telemetry.ticks,
                    time_s=now,
                    cell=cell_id,
                    budget=budget,
                    frames=observation.frames,
                    frames_late=observation.frames_late,
                    frames_shed=observation.frames_shed,
                    deadline_hit_rate=observation.deadline_hit_rate,
                    shedding=lane.shedding,
                )
            )
            lane.reset_window()

    def _update_shedding(
        self, lane: _Lane, observation: CellObservation, budget: int
    ) -> None:
        if not lane.shedding:
            # Escalate only when the budget dial is exhausted: the
            # policy has no further cut to offer — it is at its floor,
            # or it answered a badly-missing window without lowering
            # the budget that window ran at (SNR-aware and static
            # policies never cut on misses) — and the window missed
            # badly enough that the next one is not expected to
            # recover on its own.
            dial_exhausted = (
                budget <= lane.policy.paths_min
                or budget >= observation.budget
            )
            if (
                dial_exhausted
                and observation.frames_late > 0
                and observation.deadline_hit_rate < self.shed_below
            ):
                lane.shedding = True
                lane.shed_streak = 0
                self.telemetry.sheds_started += 1
        else:
            # Resume only on evidence: a window whose admitted probes
            # met their deadlines at resume_above or better, or a
            # completely idle window (nothing offered, nothing shed).
            probes_recovered = (
                observation.frames > 0
                and observation.deadline_hit_rate >= self.resume_above
            )
            if probes_recovered or not observation.busy:
                lane.shedding = False
                self.telemetry.sheds_ended += 1

    # -- fleet coordination ----------------------------------------------
    def desired_budgets(self, cell_ids=None) -> "dict[str, int]":
        """Per-cell budgets the local control law currently wants.

        The fleet-coordination *desires*: a
        :class:`~repro.farm.coordinator.FarmCoordinator` collects these
        from every worker's governor, fits them under the one global
        path budget with
        :func:`~repro.control.policy.allocate_budget`, and pushes the
        awards back through :meth:`install_budgets`.  ``cell_ids``
        (optional) forces lanes into existence for cells that have not
        flushed yet, so a fleet tick covers every cell from the first
        window.
        """
        for cell_id in cell_ids or ():
            self._lane(cell_id)
        return {
            cell_id: lane.budget for cell_id, lane in self._lanes.items()
        }

    def floor_budgets(self, cell_ids=None) -> "dict[str, int]":
        """Per-cell floors (``policy.paths_min``) for global allocation."""
        for cell_id in cell_ids or ():
            self._lane(cell_id)
        return {
            cell_id: lane.policy.paths_min
            for cell_id, lane in self._lanes.items()
        }

    def install_budgets(self, budgets: "dict[str, int]") -> None:
        """Install externally-awarded budgets (a global allocation).

        Each award is clamped to the lane policy's ``[paths_min,
        paths_max]`` and takes effect on the cell's next flush; budget
        moves are counted in the governor telemetry like local ticks.
        Stateful policies (AIMD) keep their own internal state — the
        next local tick proposes from where the policy left off, with
        the coordinator again fitting the proposal globally.
        """
        for cell_id, budget in budgets.items():
            lane = self._lane(cell_id)
            awarded = lane.policy.clamp(int(budget))
            if awarded > lane.budget:
                self.telemetry.budget_increases += 1
            elif awarded < lane.budget:
                self.telemetry.budget_decreases += 1
            lane.budget = awarded

    # -- reporting -------------------------------------------------------
    def budgets(self) -> "dict[str, int]":
        return {
            cell_id: lane.budget for cell_id, lane in self._lanes.items()
        }

    def shedding(self) -> "dict[str, bool]":
        return {
            cell_id: lane.shedding
            for cell_id, lane in self._lanes.items()
        }

    def as_dict(self) -> dict:
        payload = self.telemetry.as_dict()
        payload["policy"] = self.policy.name
        payload["budgets"] = self.budgets()
        payload["shedding"] = self.shedding()
        return payload
