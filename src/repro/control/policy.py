"""Path-budget policies: the control laws of the adaptive control plane.

FlexCore's headline claim is that the number of explored tree paths is a
*runtime dial* trading detection accuracy against compute (§3.3, Fig. 9).
This module turns the dial into closed-loop control laws: a policy
observes one cell's recent streaming behaviour (deadline hits, flush
latency, the latest channel) once per control tick and answers with the
path budget the next flushes should run at.

Three policies, in increasing awareness:

* :class:`StaticPolicy` — a fixed budget; the identity control law.  A
  governed farm under a static policy at the detector's own path count
  is bit-identical to the ungoverned farm (pinned by the equivalence
  suite), which is what makes the control plane safe to leave attached.
* :class:`AimdPolicy` — TCP-style additive-increase /
  multiplicative-decrease on deadline misses: any late frame in the
  window multiplies the budget down, a clean window with latency
  headroom adds to it.  Channel-agnostic congestion control over
  compute.
* :class:`SnrAwarePolicy` — the paper's adaptive FlexCore (§3.3) lifted
  from per-subcarrier to per-cell budgeting: from the cell's latest
  channel it builds :class:`repro.flexcore.probability.LevelErrorModel`
  and asks the §3.1.1 pre-processing search for the *minimum* path count
  whose cumulative path probability covers ``1 - target_error_rate`` —
  the smallest budget meeting a target vector-error rate under the
  geometric model.

:func:`allocate_budget` closes the farm-level loop: given every cell's
desired budget and one global budget (total concurrent tree paths — the
software analogue of a fixed pool of processing elements), it
water-fills deterministically, guaranteeing each cell its floor.
"""

from __future__ import annotations

import copy
import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.flexcore.preprocessing import find_promising_paths
from repro.flexcore.probability import LevelErrorModel
from repro.mimo.qr import sorted_qr
from repro.modulation.constellation import QamConstellation
from repro.runtime.cache import context_key


#: CLI names of the built-in policy catalogue — the one list the
#: runner's ``--governor`` choices, the experiment factory and the demo
#: all share.
POLICY_NAMES = ("static", "aimd", "snr")


@dataclass(frozen=True)
class CellObservation:
    """What one cell looked like over one control window.

    Assembled by the governor from the scheduler's flush telemetry;
    policies consume it and nothing else, which keeps every control law
    pure and testable with synthetic observations.

    Attributes
    ----------
    cell_id:
        The observed cell.
    budget:
        Path budget that was in force during the window.
    frames / flushes:
        Detected frames and service calls in the window.
    frames_on_time / frames_late:
        Per-frame deadline accounting within the window.
    frames_shed:
        Frames refused by admission control during the window.
    mean_latency_s / max_latency_s:
        Flush latency (oldest arrival to completion) over the window.
    service_sum_s:
        Total *service* time (flush dispatch to completion, queueing
        excluded) over the window — the per-frame cost estimator's
        numerator.
    peak_flush_frames:
        Largest single flush (frames) the cell has ever produced — the
        observed peak slot load.
    slot_budget_s:
        The deadline budget flushes are measured against (``inf`` when
        the scheduler runs drain-driven).
    channel:
        Latest flushed ``(Nr, Nt)`` channel, or ``None`` before the
        first flush — the SNR-aware policy's input.
    noise_var:
        Noise variance of that flush.
    """

    cell_id: str
    budget: int
    frames: int = 0
    flushes: int = 0
    frames_on_time: int = 0
    frames_late: int = 0
    frames_shed: int = 0
    mean_latency_s: float = 0.0
    max_latency_s: float = 0.0
    service_sum_s: float = 0.0
    peak_flush_frames: int = 0
    slot_budget_s: float = math.inf
    channel: "np.ndarray | None" = None
    noise_var: "float | None" = None

    @property
    def deadline_hit_rate(self) -> float:
        """Fraction of the window's detected frames that were on time."""
        total = self.frames_on_time + self.frames_late
        return self.frames_on_time / total if total else 1.0

    @property
    def mean_service_per_frame_s(self) -> float:
        """Measured service cost per frame at the window's budget."""
        return self.service_sum_s / self.frames if self.frames else 0.0

    @property
    def busy(self) -> bool:
        """Whether the window saw any traffic (detected or shed)."""
        return self.frames > 0 or self.frames_shed > 0


class PathBudgetPolicy:
    """Base class: a per-cell control law over the path budget.

    Every policy guarantees its output stays in
    ``[paths_min, paths_max]`` — the property the hypothesis suite
    pins.  Policies may be stateful (AIMD is); the governor
    :meth:`clone`\\ s the configured prototype once per cell so cells
    never share state.
    """

    name = "policy"

    def __init__(self, paths_min: int, paths_max: int):
        if paths_min < 1:
            raise ConfigurationError("paths_min must be >= 1")
        if paths_max < paths_min:
            raise ConfigurationError(
                f"paths_max ({paths_max}) must be >= paths_min ({paths_min})"
            )
        self.paths_min = int(paths_min)
        self.paths_max = int(paths_max)

    # ------------------------------------------------------------------
    def clamp(self, budget: float) -> int:
        return int(min(self.paths_max, max(self.paths_min, budget)))

    def initial_budget(self) -> int:
        """Budget before the first observation."""
        return self.paths_max

    def update(self, observation: CellObservation) -> int:
        """One control step: observation in, clamped budget out."""
        raise NotImplementedError

    def clone(self) -> "PathBudgetPolicy":
        """An independent per-cell instance of this configuration."""
        return copy.deepcopy(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(paths_min={self.paths_min}, "
            f"paths_max={self.paths_max})"
        )


class StaticPolicy(PathBudgetPolicy):
    """A fixed path budget — the identity control law.

    Attaching a governor under ``StaticPolicy(detector.num_paths)`` is
    bit-identical to running ungoverned (the equivalence suite pins
    this), so the control plane can stay wired in even when no
    adaptation is wanted.
    """

    name = "static"

    def __init__(self, paths: int):
        super().__init__(paths, paths)
        self.paths = int(paths)

    def initial_budget(self) -> int:
        return self.paths

    def update(self, observation: CellObservation) -> int:
        return self.paths


class AimdPolicy(PathBudgetPolicy):
    """Additive-increase / multiplicative-decrease on deadline misses.

    The classic congestion-control law applied to compute: a window
    containing any late frame multiplies the budget by ``backoff``; a
    clean, busy window adds ``increase`` paths — but only through the
    **load-aware headroom gate**.  A naive latency gate probes straight
    into the deadline on bursty traffic: quiet windows have tiny
    flushes, so latency looks harmless, the budget climbs to the
    ceiling, and the next burst lands late.  Instead the gate predicts
    what the *peak* slot would cost at the raised budget — measured
    per-frame service time, scaled linearly to the candidate budget,
    times the largest flush the cell has ever produced (or the caller's
    ``peak_frames_hint``, e.g. ``subcarriers x 7`` when the radio's
    capacity is known) — and grows only while that prediction and the
    window's observed worst latency both fit inside ``headroom`` of the
    slot budget.

    Under sustained misses the budget is monotone non-increasing down to
    ``paths_min`` (property-tested), which is the precondition for the
    governor's load-shedding escalation.
    """

    name = "aimd"

    def __init__(
        self,
        paths_min: int,
        paths_max: int,
        start: "int | None" = None,
        increase: int = 1,
        backoff: float = 0.5,
        headroom: float = 0.5,
        peak_frames_hint: "int | None" = None,
    ):
        super().__init__(paths_min, paths_max)
        if not 0.0 < backoff < 1.0:
            raise ConfigurationError("backoff must lie in (0, 1)")
        if increase < 1:
            raise ConfigurationError("increase must be >= 1")
        if not 0.0 < headroom <= 1.0:
            raise ConfigurationError("headroom must lie in (0, 1]")
        if peak_frames_hint is not None and peak_frames_hint < 1:
            raise ConfigurationError("peak_frames_hint must be >= 1")
        self.increase = int(increase)
        self.backoff = float(backoff)
        self.headroom = float(headroom)
        self.peak_frames_hint = peak_frames_hint
        self._budget = self.clamp(paths_min if start is None else start)

    def initial_budget(self) -> int:
        return self._budget

    def _increase_is_safe(self, observation: CellObservation) -> bool:
        allowance = self.headroom * observation.slot_budget_s
        if not math.isfinite(allowance):
            return True  # drain-driven operation: no deadline to protect
        if observation.max_latency_s > allowance:
            return False
        per_frame = observation.mean_service_per_frame_s
        peak = max(
            observation.peak_flush_frames, self.peak_frames_hint or 0
        )
        if per_frame <= 0.0 or peak <= 0:
            return True
        # Service cost scales ~linearly with the path budget; predict
        # the peak slot at the raised budget before committing to it.
        # The measurement was taken at the budget the window actually
        # ran at (observation.budget — a global path budget may have
        # clamped it below this policy's desire), so scale from there.
        raised = self.clamp(self._budget + self.increase)
        predicted = per_frame * peak * raised / max(observation.budget, 1)
        return predicted <= allowance

    def update(self, observation: CellObservation) -> int:
        if observation.frames_late > 0:
            self._budget = self.clamp(
                math.floor(self._budget * self.backoff)
            )
        elif observation.frames > 0 and self._increase_is_safe(observation):
            self._budget = self.clamp(self._budget + self.increase)
        return self._budget


class SnrAwarePolicy(PathBudgetPolicy):
    """Minimum budget meeting a target vector-error rate (a-FlexCore).

    From the cell's latest flushed channel, build the level-error model
    (:mod:`repro.flexcore.probability`) on the sorted-QR ``R`` diagonal
    and run the §3.1.1 best-first search with a cumulative-probability
    stopping criterion of ``1 - target_error_rate``: the number of paths
    expanded before the mass is covered is, under the geometric model,
    the smallest budget whose unexplored probability — the modelled
    vector-error rate — is below target.  Well-conditioned channels
    collapse towards one path; harsh ones saturate at ``paths_max``.

    This is the paper's adaptive FlexCore decision, made once per
    control tick per cell instead of once per subcarrier, so its cost
    (one QR + one tree search) is amortised over every flush of the
    window.
    """

    name = "snr"

    def __init__(
        self,
        constellation: QamConstellation,
        paths_min: int,
        paths_max: int,
        target_error_rate: float = 0.05,
        pe_formula: str = "corrected",
    ):
        super().__init__(paths_min, paths_max)
        if not 0.0 < target_error_rate < 1.0:
            raise ConfigurationError(
                "target_error_rate must lie in (0, 1)"
            )
        self.constellation = constellation
        self.target_error_rate = float(target_error_rate)
        self.pe_formula = pe_formula
        self._budget = self.paths_max
        # Memo of the last decision, keyed on channel *content*: under
        # coherence the same channel matrix recurs every slot (as fresh
        # ndarray views, so identity would never hit), and a QR + tree
        # search per tick per cell is real money on the scheduler's
        # event loop.  Hashing the channel bytes is microseconds.
        self._memo_key: "bytes | None" = None

    def initial_budget(self) -> int:
        return self._budget

    def budget_for_channel(
        self, channel: np.ndarray, noise_var: float
    ) -> int:
        """The minimum admissible budget for one channel realisation."""
        qr = sorted_qr(np.asarray(channel))
        model = LevelErrorModel.from_channel(
            qr.r, noise_var, self.constellation, formula=self.pe_formula
        )
        search = find_promising_paths(
            model,
            num_paths=self.paths_max,
            max_rank=self.constellation.order,
            stop_threshold=1.0 - self.target_error_rate,
        )
        return self.clamp(search.position_vectors.shape[0])

    def update(self, observation: CellObservation) -> int:
        if observation.channel is None or observation.noise_var is None:
            return self.clamp(self._budget)
        key = context_key(observation.channel, observation.noise_var)
        if key == self._memo_key:
            return self.clamp(self._budget)
        self._budget = self.budget_for_channel(
            observation.channel, observation.noise_var
        )
        self._memo_key = key
        return self._budget


def allocate_budget(
    desired: "dict[str, int]",
    total: int,
    floors: "dict[str, int] | int" = 1,
) -> "dict[str, int]":
    """Fit per-cell desired budgets under one global path budget.

    ``total`` bounds the *sum* of awarded budgets — the software
    analogue of a fixed pool of processing elements shared by the farm.
    When the desires fit, everyone gets what they asked; otherwise every
    cell is guaranteed its floor and the surplus is split proportionally
    to each cell's excess desire by largest remainder, with ties broken
    by cell id so the allocation is deterministic.

    When even the floors exceed ``total`` the floors are returned as-is
    (the pool is oversubscribed at minimum service); that is the
    governor's cue to start shedding load rather than degrade below the
    accuracy floor.
    """
    if total < 1:
        raise ConfigurationError("total path budget must be >= 1")
    if not desired:
        return {}
    if isinstance(floors, int):
        floors = {cell: floors for cell in desired}
    else:
        # A floor naming a cell nobody desires is almost always a typo'd
        # cell id — silently ignoring it would leave the real cell
        # unprotected at the default floor of 1.
        unknown = sorted(set(floors) - set(desired))
        if unknown:
            raise ConfigurationError(
                f"floors name cells not in desired: {unknown}; desired "
                f"cells: {sorted(desired)}"
            )
    for cell, want in desired.items():
        floor = floors.get(cell, 1)
        if want < floor:
            raise ConfigurationError(
                f"cell {cell!r} desires {want} below its floor {floor}"
            )
    if sum(desired.values()) <= total:
        return dict(desired)
    floor_sum = sum(floors.get(cell, 1) for cell in desired)
    if floor_sum >= total:
        return {cell: floors.get(cell, 1) for cell in desired}
    surplus = total - floor_sum
    excess = {
        cell: desired[cell] - floors.get(cell, 1) for cell in desired
    }
    excess_sum = sum(excess.values())
    shares = {
        cell: surplus * excess[cell] / excess_sum for cell in desired
    }
    awarded = {cell: int(math.floor(shares[cell])) for cell in desired}
    leftover = surplus - sum(awarded.values())
    # Largest remainder, cell id as the deterministic tie-break.
    order = sorted(
        desired, key=lambda cell: (awarded[cell] - shares[cell], cell)
    )
    for cell in order[:leftover]:
        awarded[cell] += 1
    return {
        cell: floors.get(cell, 1) + awarded[cell] for cell in desired
    }
