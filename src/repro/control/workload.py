"""Seeded traffic scenarios for exercising the governed AP farm.

The governor only earns its keep under interesting load, and "interesting"
has many shapes: a steady hum, memoryless Poisson chatter, on/off bursts,
a diurnal ramp, a flash crowd.  This module generates all of them from
one seed, as a per-slot demand matrix — how many subcarriers each cell
lights up in each LTE slot — so governed behaviour can be exercised,
tested and benchmarked reproducibly across diverse load shapes.

Two layers:

* :class:`WorkloadScenario` — the pure generator: ``demand()`` returns a
  ``slots x cells`` table of active-subcarrier counts, deterministic in
  the seed.  No asyncio, no radio — property-testable shape logic.
* :func:`slot_arrivals` / :func:`pace_scenario` — the materialisation:
  turn one slot's demand row into
  :class:`~repro.runtime.scheduler.FrameArrival` bursts (7 symbol
  vectors per active subcarrier, per the LTE framing) and pace a whole
  scenario through a running scheduler at a fixed slot interval,
  collecting detections and :class:`~repro.errors.LoadShedError` sheds.
"""

from __future__ import annotations

import asyncio
import math
import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, LoadShedError
from repro.mimo.model import apply_channel
from repro.modulation.mapper import random_symbol_indices
from repro.ofdm.lte import SYMBOLS_PER_SLOT
from repro.runtime.scheduler import FrameArrival

#: The scenario catalogue.
SCENARIOS = ("steady", "poisson", "bursty", "diurnal", "flash-crowd")


@dataclass(frozen=True)
class WorkloadScenario:
    """A seeded per-slot traffic shape over the cells of a farm.

    Attributes
    ----------
    scenario:
        One of :data:`SCENARIOS`.
    cells:
        Cell ids, in demand-table column order.
    slots:
        Number of LTE slots the scenario spans.
    subcarriers:
        Peak active subcarriers per cell per slot (the capacity of the
        radio front-end).
    utilization:
        Mean load as a fraction of peak, where the shape permits.
    seed:
        Every random draw derives from this seed — equal seeds give
        equal demand tables.
    on_probability / off_recovery:
        ``bursty`` Markov chain: probability an *off* cell turns on,
        and an *on* cell stays on, per slot.
    flash_start / flash_length:
        ``flash-crowd`` spike window as fractions of the run.
    """

    scenario: str
    cells: tuple
    slots: int
    subcarriers: int
    utilization: float = 0.6
    seed: int = 2017
    on_probability: float = 0.35
    off_recovery: float = 0.65
    flash_start: float = 0.4
    flash_length: float = 0.25

    def __post_init__(self) -> None:
        if self.scenario not in SCENARIOS:
            raise ConfigurationError(
                f"unknown scenario {self.scenario!r}; options: "
                f"{', '.join(SCENARIOS)}"
            )
        if self.slots < 1:
            raise ConfigurationError("slots must be >= 1")
        if self.subcarriers < 1:
            raise ConfigurationError("subcarriers must be >= 1")
        if not 0.0 < self.utilization <= 1.0:
            raise ConfigurationError("utilization must lie in (0, 1]")
        if not self.cells:
            raise ConfigurationError("scenario needs at least one cell")
        object.__setattr__(self, "cells", tuple(self.cells))

    # ------------------------------------------------------------------
    def demand(self) -> "list[dict[str, int]]":
        """Per-slot ``{cell: active subcarriers}`` rows, seeded."""
        rng = np.random.default_rng(self.seed)
        peak = self.subcarriers
        base = self.utilization * peak
        rows: "list[dict[str, int]]" = []
        if self.scenario == "bursty":
            on = rng.random(len(self.cells)) < 0.5
        for slot in range(self.slots):
            row: "dict[str, int]" = {}
            if self.scenario == "bursty":
                flips = rng.random(len(self.cells))
                on = np.where(
                    on,
                    flips < self.off_recovery,
                    flips < self.on_probability,
                )
            for index, cell in enumerate(self.cells):
                if self.scenario == "steady":
                    count = round(base)
                elif self.scenario == "poisson":
                    count = int(min(peak, rng.poisson(base)))
                elif self.scenario == "bursty":
                    count = peak if on[index] else round(0.15 * base)
                elif self.scenario == "diurnal":
                    # Half-sine over the run: quiet edges, busy middle.
                    phase = math.sin(math.pi * (slot + 0.5) / self.slots)
                    count = round(base * (0.25 + 0.75 * phase) / 0.8125)
                else:  # flash-crowd
                    start = int(self.flash_start * self.slots)
                    stop = start + max(
                        1, int(self.flash_length * self.slots)
                    )
                    count = (
                        peak if start <= slot < stop else round(0.5 * base)
                    )
                row[cell] = int(min(peak, max(0, count)))
            rows.append(row)
        return rows

    def offered_frames(
        self, symbols_per_slot: int = SYMBOLS_PER_SLOT
    ) -> int:
        """Total frames the scenario offers (burst size x demand)."""
        return symbols_per_slot * sum(
            count for row in self.demand() for count in row.values()
        )


def slot_arrivals(
    demand_row: "dict[str, int]",
    cell_channels: "dict[str, np.ndarray]",
    system,
    noise_var: float,
    rng: np.random.Generator,
    symbols_per_slot: int = SYMBOLS_PER_SLOT,
) -> "list[FrameArrival]":
    """Materialise one demand row as per-subcarrier slot bursts.

    Each active subcarrier contributes one arrival of
    ``symbols_per_slot`` random symbol vectors pushed through that
    subcarrier's channel.  The first ``count`` subcarriers of each cell
    are used, so a cell's channels recur across slots and the per-cell
    context caches see realistic coherence.
    """
    arrivals = []
    constellation = system.constellation
    for cell_id, count in demand_row.items():
        channels = cell_channels[cell_id]
        if count > channels.shape[0]:
            raise ConfigurationError(
                f"cell {cell_id!r} demand {count} exceeds its "
                f"{channels.shape[0]} subcarrier channels"
            )
        for sc in range(count):
            indices = random_symbol_indices(
                symbols_per_slot,
                system.num_streams,
                constellation,
                rng,
            )
            arrivals.append(
                FrameArrival(
                    channel=channels[sc],
                    received=apply_channel(
                        channels[sc],
                        constellation.points[indices],
                        noise_var,
                        rng,
                    ),
                    noise_var=noise_var,
                    cell=cell_id,
                )
            )
    return arrivals


@dataclass
class ScenarioOutcome:
    """What came back from pacing one scenario through a scheduler."""

    frames_submitted: int = 0
    frames_detected: int = 0
    frames_shed: int = 0
    elapsed_s: float = 0.0
    detections: list = field(default_factory=list)

    @property
    def shed_rate(self) -> float:
        total = self.frames_detected + self.frames_shed
        return self.frames_shed / total if total else 0.0


def calibrate_slot_cost(
    farm,
    scenario: WorkloadScenario,
    cell_channels: "dict[str, np.ndarray]",
    system,
    noise_var: float,
    symbols_per_slot: int = SYMBOLS_PER_SLOT,
    seed: "int | None" = None,
    batch_target: "int | None" = None,
    flush_margin_s: float = 0.0,
) -> float:
    """Warm wall-clock cost of one full-load slot through ``farm``.

    The calibration protocol every governed-farm driver (experiment,
    demo, bench) shares: one cold pass at peak demand fills the
    per-cell context caches, one warm pass prices the steady-state
    slot — at whatever budget the farm's detectors currently run,
    i.e. the *full* budget when no governor is attached.  Offered-load
    dials (``interval = overload x cost``) hang off this number.
    ``batch_target`` defaults to the slot burst size (one flush per
    (cell, subcarrier) per slot); pass the deployment's configured
    target so the calibrated cost prices the flush shape that will
    actually run.
    """
    peak_row = {cell: scenario.subcarriers for cell in scenario.cells}
    base_seed = scenario.seed if seed is None else seed
    if batch_target is None:
        batch_target = symbols_per_slot

    async def one_pass():
        rng = np.random.default_rng(base_seed)
        async with farm.scheduler(
            batch_target=batch_target,
            slot_budget_s=math.inf,
            flush_margin_s=flush_margin_s,
        ) as scheduler:
            futures = [
                await scheduler.submit(arrival)
                for arrival in slot_arrivals(
                    peak_row,
                    cell_channels,
                    system,
                    noise_var,
                    rng,
                    symbols_per_slot=symbols_per_slot,
                )
            ]
            await scheduler.flush()
            await asyncio.gather(*futures)

    asyncio.run(one_pass())  # cold: fill the per-cell caches
    start = time.perf_counter()
    asyncio.run(one_pass())  # warm: the steady-state slot cost
    return time.perf_counter() - start


def run_paced(
    farm,
    scenario: WorkloadScenario,
    cell_channels: "dict[str, np.ndarray]",
    system,
    noise_var: float,
    slot_interval_s: float,
    governor=None,
    symbols_per_slot: int = SYMBOLS_PER_SLOT,
    seed: "int | None" = None,
    keep_detections: bool = False,
    batch_target: "int | None" = None,
    slot_budget_s: "float | None" = None,
    flush_margin_s: float = 0.0,
):
    """Synchronous one-shot: pace a scenario through a fresh scheduler.

    Spins up a scheduler on ``farm`` (optionally governed), plays the
    scenario at ``slot_interval_s`` via :func:`pace_scenario`, and
    returns ``(ScenarioOutcome, SchedulerTelemetry)``.  Shared by the
    ``farm`` experiment, ``examples/adaptive_farm.py`` and the governor
    bench so all three measure exactly the same protocol.
    ``batch_target`` defaults to the slot burst size and
    ``slot_budget_s`` to the pacing interval (the real-time contract of
    a paced run); pass explicit values to model a different flush
    policy, e.g. from a :class:`repro.api.SchedulerSpec`.
    """
    base_seed = scenario.seed + 1 if seed is None else seed
    rng = np.random.default_rng(base_seed)
    if batch_target is None:
        batch_target = symbols_per_slot
    if slot_budget_s is None:
        slot_budget_s = slot_interval_s

    async def paced():
        async with farm.scheduler(
            batch_target=batch_target,
            slot_budget_s=slot_budget_s,
            flush_margin_s=flush_margin_s,
            governor=governor,
        ) as scheduler:
            outcome = await pace_scenario(
                scheduler,
                scenario,
                cell_channels,
                system,
                noise_var,
                slot_interval_s,
                rng,
                symbols_per_slot=symbols_per_slot,
                keep_detections=keep_detections,
            )
            return outcome, scheduler.telemetry

    return asyncio.run(paced())


async def pace_scenario(
    scheduler,
    scenario: WorkloadScenario,
    cell_channels: "dict[str, np.ndarray]",
    system,
    noise_var: float,
    slot_interval_s: float,
    rng: np.random.Generator,
    symbols_per_slot: int = SYMBOLS_PER_SLOT,
    keep_detections: bool = False,
) -> ScenarioOutcome:
    """Pace a scenario's slots through a *running* scheduler.

    Submits each slot's arrivals at its paced start time, flushes and
    drains at the end, and folds shed arrivals
    (:class:`~repro.errors.LoadShedError`) into the outcome instead of
    raising — shedding is a governed farm's *designed* overload
    behaviour, not a failure of the driver.
    """
    if slot_interval_s <= 0:
        raise ConfigurationError("slot_interval_s must be positive")
    outcome = ScenarioOutcome()
    futures = []
    start = time.monotonic()
    for slot, row in enumerate(scenario.demand()):
        delay = start + slot * slot_interval_s - time.monotonic()
        if delay > 0:
            await asyncio.sleep(delay)
        for arrival in slot_arrivals(
            row,
            cell_channels,
            system,
            noise_var,
            rng,
            symbols_per_slot=symbols_per_slot,
        ):
            outcome.frames_submitted += arrival.num_frames
            futures.append(
                (arrival.num_frames, await scheduler.submit(arrival))
            )
    await scheduler.flush()
    results = await asyncio.gather(
        *(future for _, future in futures), return_exceptions=True
    )
    for (frames, _), result in zip(futures, results):
        if isinstance(result, LoadShedError):
            outcome.frames_shed += frames
        elif isinstance(result, BaseException):
            raise result
        else:
            outcome.frames_detected += frames
            if keep_detections:
                outcome.detections.append(result)
    outcome.elapsed_s = time.monotonic() - start
    return outcome
