"""Trellis-based parallel detector (Wu et al. [50]).

The GPU detector the paper's Fig. 9 includes as a third parallel baseline:
detection runs as a Viterbi-like sweep over a fully-connected trellis whose
states are the ``|Q|`` constellation points of the current tree level.
Each of the fixed ``|Q|`` processing elements tracks the best partial path
ending in "its" constellation point; moving down a level costs ``|Q|^2``
partial-distance evaluations.

Limitations reproduced faithfully (and visible in Fig. 9): the number of
processing elements is pinned to ``|Q|`` — the scheme cannot use more or
fewer — and path pruning is greedy per state, so it is consistently beaten
by FCSD and FlexCore while still outperforming MMSE.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.detectors.base import DetectionResult, Detector
from repro.mimo.qr import QrDecomposition, sorted_qr
from repro.mimo.system import MimoSystem
from repro.utils.flops import NULL_COUNTER, FlopCounter

#: Bound on (batch x |Q| x |Q|) intermediate size per vectorised block.
MAX_CHUNK_ELEMENTS = 1 << 22


@dataclass
class _TrellisContext:
    qr: QrDecomposition
    diag: np.ndarray
    weights: np.ndarray


class TrellisDetector(Detector):
    """Fully-connected-trellis detection with ``|Q|`` survivor paths."""

    name = "trellis"

    def __init__(self, system: MimoSystem):
        super().__init__(system)

    @property
    def num_paths(self) -> int:
        """Processing elements required: exactly ``|Q|`` (fixed)."""
        return self.system.constellation.order

    def prepare(
        self,
        channel: np.ndarray,
        noise_var: float,
        counter: FlopCounter = NULL_COUNTER,
    ) -> _TrellisContext:
        channel = self._check_channel(channel)
        qr = sorted_qr(channel, counter=counter)
        diag = np.real(np.diagonal(qr.r)).copy()
        return _TrellisContext(qr=qr, diag=diag, weights=diag**2)

    def detect_prepared(
        self,
        context: _TrellisContext,
        received: np.ndarray,
        counter: FlopCounter = NULL_COUNTER,
    ) -> DetectionResult:
        received = self._check_received(received)
        rotated = context.qr.rotate_received(received)
        order = self.system.constellation.order
        chunk = max(1, MAX_CHUNK_ELEMENTS // (order * order))
        pieces = []
        for start in range(0, rotated.shape[0], chunk):
            pieces.append(
                self._detect_chunk(context, rotated[start : start + chunk], counter)
            )
        indices = np.concatenate(pieces, axis=0)
        restored = context.qr.restore_order(indices)
        return DetectionResult(indices=restored, metadata={"paths": order})

    def _detect_chunk(
        self,
        context: _TrellisContext,
        rotated: np.ndarray,
        counter: FlopCounter,
    ) -> np.ndarray:
        constellation = self.system.constellation
        points = constellation.points
        order = constellation.order
        num_streams = self.system.num_streams
        batch = rotated.shape[0]
        r = context.qr.r
        top = num_streams - 1

        # One survivor path per trellis state (= symbol at current level).
        effective = rotated[:, top][:, None] / context.diag[top]
        ped = context.weights[top] * np.abs(effective - points[None, :]) ** 2
        paths = np.broadcast_to(
            np.arange(order, dtype=np.int64)[None, :, None], (batch, order, 1)
        ).copy()
        counter.add_real_mults(batch * (2 + 3 * order))

        for level in range(top - 1, -1, -1):
            symbols = points[paths]  # (batch, order, filled), top level first
            row = r[level, level + 1 :]
            interference = symbols[:, :, ::-1] @ row  # ascending p order
            effective = (
                rotated[:, level][:, None] - interference
            ) / context.diag[level]
            candidate = ped[:, :, None] + context.weights[level] * (
                np.abs(effective[:, :, None] - points[None, None, :]) ** 2
            )  # (batch, prev_state, new_state)
            best_prev = np.argmin(candidate, axis=1)  # (batch, new_state)
            ped = np.take_along_axis(
                candidate, best_prev[:, None, :], axis=1
            )[:, 0, :]
            parent_paths = np.take_along_axis(
                paths, best_prev[:, :, None], axis=1
            )
            new_symbols = np.broadcast_to(
                np.arange(order, dtype=np.int64)[None, :, None],
                (batch, order, 1),
            )
            paths = np.concatenate([parent_paths, new_symbols], axis=2)
            counter.add_complex_mults(
                batch * order * (num_streams - 1 - level)
            )
            counter.add_real_mults(batch * order * (2 + 3 * order))
        best_state = np.argmin(ped, axis=1)
        winning = np.take_along_axis(
            paths, best_state[:, None, None], axis=1
        )[:, 0, :]
        return winning[:, ::-1]  # stored top-first; flip into level order
