"""The detector interface shared by every scheme in the reproduction.

Detection splits into two phases mirroring the paper's architecture
(Fig. 2):

* :meth:`Detector.prepare` runs once per channel realisation (QR
  decompositions, filter matrices, FlexCore pre-processing, ...) and
  returns an opaque *channel context*;
* :meth:`Detector.detect_prepared` maps a batch of received vectors to
  hard symbol-index decisions using that context.

The split matters because the channel is static over a packet (§5): one
``prepare`` amortises over the 48 subcarriers x many OFDM symbols it
serves, exactly like the paper's pre-processing that re-runs only when the
channel changes.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import DimensionError
from repro.mimo.system import MimoSystem
from repro.utils.flops import NULL_COUNTER, FlopCounter


@dataclass
class DetectionResult:
    """Hard decisions plus per-batch diagnostics.

    Attributes
    ----------
    indices:
        ``(n, Nt)`` detected constellation indices, original stream order.
    metadata:
        Scheme-specific extras (nodes visited, active processing elements,
        per-vector minimum Euclidean distances, ...).
    """

    indices: np.ndarray
    metadata: dict = field(default_factory=dict)


class Detector(abc.ABC):
    """Abstract base class for all hard-output MIMO detectors."""

    #: Human-readable scheme name; subclasses override.
    name: str = "detector"

    def __init__(self, system: MimoSystem):
        self.system = system

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def prepare(
        self,
        channel: np.ndarray,
        noise_var: float,
        counter: FlopCounter = NULL_COUNTER,
    ) -> Any:
        """Per-channel work; returns a context for :meth:`detect_prepared`."""

    @abc.abstractmethod
    def detect_prepared(
        self,
        context: Any,
        received: np.ndarray,
        counter: FlopCounter = NULL_COUNTER,
    ) -> DetectionResult:
        """Detect a ``(n, Nr)`` batch using a prepared context.

        Batching contract (relied on by
        :class:`repro.runtime.engine.BatchedUplinkEngine`):

        * the context is read-only here — a context prepared once may be
          replayed for any number of ``detect_prepared`` calls, in any
          order, across frames and retransmissions of the same channel;
        * contexts are pure functions of ``(channel, noise_var)``, so two
          bit-identical channels at the same noise level may share one
          context (content-addressed caching);
        * output row ``i`` depends only on received row ``i`` — splitting
          a batch and concatenating the results is exact, which makes
          subcarrier/frame sharding safe.
        """

    # ------------------------------------------------------------------
    @property
    def has_block_kernel(self) -> bool:
        """Whether this detector provides a stacked multi-channel kernel.

        Detectors exposing ``detect_block_prepared(contexts, received,
        counter=..., xp=...)`` (e.g. FlexCore's tensor walk) are routed
        through it by :meth:`detect_many` and by the runtime's ``array``
        execution backend; everything else falls back to the documented
        per-channel loop.
        """
        return callable(getattr(self, "detect_block_prepared", None))

    def prepare_many(
        self,
        channels: np.ndarray,
        noise_var: float,
        counter: FlopCounter = NULL_COUNTER,
    ) -> list:
        """One context per ``(C, Nr, Nt)`` channel.

        The base implementation loops :meth:`prepare`; detectors with a
        batched prepare path (e.g. FlexCore's stacked QR) override it.
        Either way the returned contexts — and the FLOPs charged — must
        be identical to preparing each channel individually.
        """
        channels = np.asarray(channels)
        return [
            self.prepare(channels[c], noise_var, counter=counter)
            for c in range(channels.shape[0])
        ]

    def detect(
        self,
        channel: np.ndarray,
        received: np.ndarray,
        noise_var: float,
        counter: FlopCounter = NULL_COUNTER,
    ) -> DetectionResult:
        """Convenience single-shot path: prepare then detect."""
        context = self.prepare(channel, noise_var, counter=counter)
        return self.detect_prepared(context, received, counter=counter)

    def detect_many(
        self,
        channels: np.ndarray,
        received: np.ndarray,
        noise_var: float,
        counter: FlopCounter = NULL_COUNTER,
    ) -> list[DetectionResult]:
        """Multi-channel detection: one ``prepare`` per channel.

        ``channels`` is ``(C, Nr, Nt)`` and ``received`` is ``(C, n,
        Nr)``.  Detectors providing a stacked kernel
        (:attr:`has_block_kernel`) detect every channel in one tensor
        walk with bit-identical output; third-party detectors without
        one run the naive per-channel loop below — the unamortised
        reference the runtime engine is benchmarked against.  Production
        paths should prefer
        :class:`repro.runtime.engine.BatchedUplinkEngine`, which also
        caches contexts across coherent channels.
        """
        channels = np.asarray(channels)
        received = np.asarray(received)
        if channels.ndim != 3 or received.ndim != 3:
            raise DimensionError(
                f"{self.name}: detect_many wants (C, Nr, Nt) channels and "
                f"(C, n, Nr) received, got {channels.shape} / "
                f"{received.shape}"
            )
        if channels.shape[0] != received.shape[0]:
            raise DimensionError(
                f"{self.name}: {channels.shape[0]} channels vs "
                f"{received.shape[0]} received blocks"
            )
        if self.has_block_kernel:
            contexts = self.prepare_many(channels, noise_var, counter=counter)
            indices, metadata = self.detect_block_prepared(
                contexts, received, counter=counter
            )
            return [
                DetectionResult(indices=indices[c], metadata=metadata[c])
                for c in range(channels.shape[0])
            ]
        # Documented fallback: the per-channel prepare+detect loop.
        return [
            self.detect(channels[c], received[c], noise_var, counter=counter)
            for c in range(channels.shape[0])
        ]

    # ------------------------------------------------------------------
    def _check_channel(self, channel: np.ndarray) -> np.ndarray:
        channel = np.asarray(channel)
        expected = (self.system.num_rx_antennas, self.system.num_streams)
        if channel.shape != expected:
            raise DimensionError(
                f"{self.name}: channel shape {channel.shape} != {expected}"
            )
        return channel

    def _check_received(self, received: np.ndarray) -> np.ndarray:
        received = np.asarray(received)
        if received.ndim == 1:
            received = received[None, :]
        if received.ndim != 2 or received.shape[1] != self.system.num_rx_antennas:
            raise DimensionError(
                f"{self.name}: received shape {received.shape} is not "
                f"(n, {self.system.num_rx_antennas})"
            )
        return received
