"""The detector interface shared by every scheme in the reproduction.

Detection splits into two phases mirroring the paper's architecture
(Fig. 2):

* :meth:`Detector.prepare` runs once per channel realisation (QR
  decompositions, filter matrices, FlexCore pre-processing, ...) and
  returns an opaque *channel context*;
* :meth:`Detector.detect_prepared` maps a batch of received vectors to
  hard symbol-index decisions using that context.

The split matters because the channel is static over a packet (§5): one
``prepare`` amortises over the 48 subcarriers x many OFDM symbols it
serves, exactly like the paper's pre-processing that re-runs only when the
channel changes.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import DimensionError
from repro.mimo.system import MimoSystem
from repro.utils.flops import NULL_COUNTER, FlopCounter


@dataclass
class DetectionResult:
    """Hard decisions plus per-batch diagnostics.

    Attributes
    ----------
    indices:
        ``(n, Nt)`` detected constellation indices, original stream order.
    metadata:
        Scheme-specific extras (nodes visited, active processing elements,
        per-vector minimum Euclidean distances, ...).
    """

    indices: np.ndarray
    metadata: dict = field(default_factory=dict)


class Detector(abc.ABC):
    """Abstract base class for all hard-output MIMO detectors."""

    #: Human-readable scheme name; subclasses override.
    name: str = "detector"

    def __init__(self, system: MimoSystem):
        self.system = system

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def prepare(
        self,
        channel: np.ndarray,
        noise_var: float,
        counter: FlopCounter = NULL_COUNTER,
    ) -> Any:
        """Per-channel work; returns a context for :meth:`detect_prepared`."""

    @abc.abstractmethod
    def detect_prepared(
        self,
        context: Any,
        received: np.ndarray,
        counter: FlopCounter = NULL_COUNTER,
    ) -> DetectionResult:
        """Detect a ``(n, Nr)`` batch using a prepared context.

        Batching contract (relied on by
        :class:`repro.runtime.engine.BatchedUplinkEngine`):

        * the context is read-only here — a context prepared once may be
          replayed for any number of ``detect_prepared`` calls, in any
          order, across frames and retransmissions of the same channel;
        * contexts are pure functions of ``(channel, noise_var)``, so two
          bit-identical channels at the same noise level may share one
          context (content-addressed caching);
        * output row ``i`` depends only on received row ``i`` — splitting
          a batch and concatenating the results is exact, which makes
          subcarrier/frame sharding safe.
        """

    # ------------------------------------------------------------------
    def detect(
        self,
        channel: np.ndarray,
        received: np.ndarray,
        noise_var: float,
        counter: FlopCounter = NULL_COUNTER,
    ) -> DetectionResult:
        """Convenience single-shot path: prepare then detect."""
        context = self.prepare(channel, noise_var, counter=counter)
        return self.detect_prepared(context, received, counter=counter)

    def detect_many(
        self,
        channels: np.ndarray,
        received: np.ndarray,
        noise_var: float,
        counter: FlopCounter = NULL_COUNTER,
    ) -> list[DetectionResult]:
        """Naive multi-channel loop: one ``prepare`` per channel.

        ``channels`` is ``(C, Nr, Nt)`` and ``received`` is ``(C, n,
        Nr)``.  This is the unamortised reference the runtime engine is
        benchmarked against; production paths should prefer
        :class:`repro.runtime.engine.BatchedUplinkEngine`, which caches
        contexts across coherent channels and shards the loop.
        """
        channels = np.asarray(channels)
        received = np.asarray(received)
        if channels.ndim != 3 or received.ndim != 3:
            raise DimensionError(
                f"{self.name}: detect_many wants (C, Nr, Nt) channels and "
                f"(C, n, Nr) received, got {channels.shape} / "
                f"{received.shape}"
            )
        if channels.shape[0] != received.shape[0]:
            raise DimensionError(
                f"{self.name}: {channels.shape[0]} channels vs "
                f"{received.shape[0]} received blocks"
            )
        return [
            self.detect(channels[c], received[c], noise_var, counter=counter)
            for c in range(channels.shape[0])
        ]

    # ------------------------------------------------------------------
    def _check_channel(self, channel: np.ndarray) -> np.ndarray:
        channel = np.asarray(channel)
        expected = (self.system.num_rx_antennas, self.system.num_streams)
        if channel.shape != expected:
            raise DimensionError(
                f"{self.name}: channel shape {channel.shape} != {expected}"
            )
        return channel

    def _check_received(self, received: np.ndarray) -> np.ndarray:
        received = np.asarray(received)
        if received.ndim == 1:
            received = received[None, :]
        if received.ndim != 2 or received.shape[1] != self.system.num_rx_antennas:
            raise DimensionError(
                f"{self.name}: received shape {received.shape} is not "
                f"(n, {self.system.num_rx_antennas})"
            )
        return received
