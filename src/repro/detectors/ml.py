"""Exhaustive maximum-likelihood detection.

Feasible only for small ``|Q|**Nt``; serves as the ground truth the sphere
decoder, FCSD, K-best and FlexCore are validated against in the test
suite.  For large systems the exact-ML reference is
:class:`repro.detectors.sphere.SphereDecoder`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.detectors.base import DetectionResult, Detector
from repro.errors import ConfigurationError
from repro.mimo.system import MimoSystem
from repro.utils.flops import NULL_COUNTER, FlopCounter

#: Refuse exhaustive enumeration beyond this many candidate vectors.
MAX_CANDIDATES = 1 << 20


def enumerate_symbol_vectors(system: MimoSystem) -> np.ndarray:
    """All ``|Q|**Nt`` index vectors, shape ``(candidates, Nt)``.

    Stream 0 varies slowest, matching ``np.ndindex`` order; tests rely on
    the ordering being deterministic.
    """
    order = system.constellation.order
    num_streams = system.num_streams
    total = order**num_streams
    if total > MAX_CANDIDATES:
        raise ConfigurationError(
            f"exhaustive ML infeasible: |Q|^Nt = {total} candidates"
        )
    grids = np.indices((order,) * num_streams).reshape(num_streams, total)
    return grids.T.astype(np.int64)


@dataclass
class _MlContext:
    candidate_indices: np.ndarray  # (candidates, Nt)
    candidate_received: np.ndarray  # (candidates, Nr): H s for each candidate


class MlDetector(Detector):
    """Brute-force ML over every candidate transmit vector."""

    name = "ml"

    def __init__(self, system: MimoSystem, chunk_size: int = 1 << 16):
        super().__init__(system)
        self.chunk_size = int(chunk_size)

    def prepare(
        self,
        channel: np.ndarray,
        noise_var: float,
        counter: FlopCounter = NULL_COUNTER,
    ) -> _MlContext:
        channel = self._check_channel(channel)
        candidates = enumerate_symbol_vectors(self.system)
        symbols = self.system.constellation.points[candidates]
        candidate_received = symbols @ channel.T
        counter.add_complex_mults(
            candidates.shape[0]
            * self.system.num_streams
            * self.system.num_rx_antennas
        )
        return _MlContext(
            candidate_indices=candidates, candidate_received=candidate_received
        )

    def detect_prepared(
        self,
        context: _MlContext,
        received: np.ndarray,
        counter: FlopCounter = NULL_COUNTER,
    ) -> DetectionResult:
        received = self._check_received(received)
        num_candidates = context.candidate_received.shape[0]
        best = np.empty(received.shape[0], dtype=np.int64)
        best_metric = np.empty(received.shape[0])
        for start in range(0, received.shape[0], self.chunk_size):
            block = received[start : start + self.chunk_size]
            # (n_block, candidates): squared distances.
            deltas = block[:, None, :] - context.candidate_received[None, :, :]
            metric = np.sum(np.abs(deltas) ** 2, axis=2)
            best[start : start + block.shape[0]] = np.argmin(metric, axis=1)
            best_metric[start : start + block.shape[0]] = np.min(metric, axis=1)
            counter.add_magnitude_squared(
                block.shape[0] * num_candidates * self.system.num_rx_antennas
            )
        indices = context.candidate_indices[best]
        return DetectionResult(
            indices=indices, metadata={"min_distance_sq": best_metric}
        )
