"""Linear detectors: zero-forcing and MMSE.

These are the schemes Argos/BigStation/SAM rely on; they parallelise
trivially (one filter multiply per subcarrier) but lose throughput when
the channel is poorly conditioned — the gap FlexCore reclaims (§1, §5.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.detectors.base import DetectionResult, Detector
from repro.mimo.qr import mmse_filter, zf_filter
from repro.utils.flops import NULL_COUNTER, FlopCounter


@dataclass
class _LinearContext:
    filter_matrix: np.ndarray  # (Nt, Nr)


class _LinearDetector(Detector):
    """Shared filter-then-slice machinery."""

    def detect_prepared(
        self,
        context: _LinearContext,
        received: np.ndarray,
        counter: FlopCounter = NULL_COUNTER,
    ) -> DetectionResult:
        received = self._check_received(received)
        estimates = received @ context.filter_matrix.T
        num_streams = self.system.num_streams
        counter.add_complex_mults(
            received.shape[0] * num_streams * self.system.num_rx_antennas
        )
        indices = self.system.constellation.slice_to_index(estimates)
        return DetectionResult(indices=indices)


class ZfDetector(_LinearDetector):
    """Zero-forcing (channel pseudo-inversion)."""

    name = "zf"

    def prepare(
        self,
        channel: np.ndarray,
        noise_var: float,
        counter: FlopCounter = NULL_COUNTER,
    ) -> _LinearContext:
        channel = self._check_channel(channel)
        return _LinearContext(filter_matrix=zf_filter(channel, counter=counter))


class MmseDetector(_LinearDetector):
    """Minimum mean-squared-error linear detection."""

    name = "mmse"

    def prepare(
        self,
        channel: np.ndarray,
        noise_var: float,
        counter: FlopCounter = NULL_COUNTER,
    ) -> _LinearContext:
        channel = self._check_channel(channel)
        matrix = mmse_filter(channel, noise_var, counter=counter)
        return _LinearContext(filter_matrix=matrix)
