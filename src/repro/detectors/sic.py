"""Ordered successive interference cancellation (V-BLAST [47]).

QR-based SIC: detect the top tree level first, slice, cancel, descend.
The paper's Fig. 12 treats SIC as "essentially a single-path FlexCore",
which is exactly what this implementation is — the greedy path through the
sphere-decoder tree under a sorted QR.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.detectors.base import DetectionResult, Detector
from repro.mimo.qr import QrDecomposition, sorted_qr
from repro.utils.flops import NULL_COUNTER, FlopCounter


@dataclass
class _SicContext:
    qr: QrDecomposition


class SicDetector(Detector):
    """Sorted-QR successive interference cancellation."""

    name = "sic"

    def prepare(
        self,
        channel: np.ndarray,
        noise_var: float,
        counter: FlopCounter = NULL_COUNTER,
    ) -> _SicContext:
        channel = self._check_channel(channel)
        return _SicContext(qr=sorted_qr(channel, counter=counter))

    def detect_prepared(
        self,
        context: _SicContext,
        received: np.ndarray,
        counter: FlopCounter = NULL_COUNTER,
    ) -> DetectionResult:
        received = self._check_received(received)
        qr = context.qr
        constellation = self.system.constellation
        num_streams = self.system.num_streams
        rotated = qr.rotate_received(received)  # (n, Nt)
        batch = received.shape[0]

        detected_symbols = np.empty((batch, num_streams), dtype=np.complex128)
        detected_indices = np.empty((batch, num_streams), dtype=np.int64)
        diag = np.real(np.diagonal(qr.r))
        for level in range(num_streams - 1, -1, -1):
            interference = (
                detected_symbols[:, level + 1 :] @ qr.r[level, level + 1 :]
                if level + 1 < num_streams
                else 0.0
            )
            effective = (rotated[:, level] - interference) / diag[level]
            indices = constellation.slice_to_index(effective)
            detected_indices[:, level] = indices
            detected_symbols[:, level] = constellation.points[indices]
            counter.add_complex_mults(batch * (num_streams - 1 - level))
            counter.add_real_mults(2 * batch)  # division by the real diagonal
        restored = qr.restore_order(detected_indices)
        return DetectionResult(indices=restored)
