"""K-best breadth-first sphere decoding.

The classic fixed-complexity alternative ([9, 18, 28, ...] in the paper's
related work): at every tree level only the ``K`` best partial paths
survive.  Unlike FlexCore the per-level beam width is fixed and the
required sorting introduces synchronisation between parallel processing
elements — which is the comparison point §6 draws.

Fully vectorised over the received batch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.detectors.base import DetectionResult, Detector
from repro.errors import ConfigurationError
from repro.mimo.qr import QrDecomposition, sorted_qr
from repro.mimo.system import MimoSystem
from repro.utils.flops import NULL_COUNTER, FlopCounter


@dataclass
class _KBestContext:
    qr: QrDecomposition
    diag: np.ndarray
    weights: np.ndarray


class KBestDetector(Detector):
    """Breadth-first K-best detector."""

    name = "kbest"

    def __init__(self, system: MimoSystem, k: int = 16):
        super().__init__(system)
        if k <= 0:
            raise ConfigurationError(f"k must be positive, got {k}")
        self.k = int(k)

    def prepare(
        self,
        channel: np.ndarray,
        noise_var: float,
        counter: FlopCounter = NULL_COUNTER,
    ) -> _KBestContext:
        channel = self._check_channel(channel)
        qr = sorted_qr(channel, counter=counter)
        diag = np.real(np.diagonal(qr.r)).copy()
        return _KBestContext(qr=qr, diag=diag, weights=diag**2)

    def detect_prepared(
        self,
        context: _KBestContext,
        received: np.ndarray,
        counter: FlopCounter = NULL_COUNTER,
    ) -> DetectionResult:
        received = self._check_received(received)
        rotated = context.qr.rotate_received(received)
        constellation = self.system.constellation
        points = constellation.points
        order = constellation.order
        num_streams = self.system.num_streams
        batch = received.shape[0]
        r = context.qr.r

        top = num_streams - 1
        # Level Nt-1: children of the root are all |Q| symbols.
        effective = rotated[:, top][:, None] / context.diag[top]
        child_ped = context.weights[top] * np.abs(effective - points[None, :]) ** 2
        counter.add_real_mults(batch * (2 + 3 * order))
        keep = min(self.k, order)
        best = np.argsort(child_ped, axis=1)[:, :keep]
        peds = np.take_along_axis(child_ped, best, axis=1)  # (batch, keep)
        # paths: (batch, beams, levels-so-far) symbol indices.
        paths = best[:, :, None]

        for level in range(top - 1, -1, -1):
            beams = paths.shape[1]
            symbols = points[paths]  # (batch, beams, filled)
            row = r[level, level + 1 :]
            interference = symbols[:, :, ::-1] @ row  # see layout note below
            effective = (rotated[:, level][:, None] - interference) / context.diag[
                level
            ]
            child = (
                context.weights[level]
                * np.abs(effective[:, :, None] - points[None, None, :]) ** 2
            )
            total = peds[:, :, None] + child  # (batch, beams, order)
            counter.add_complex_mults(batch * beams * (num_streams - 1 - level))
            counter.add_real_mults(batch * beams * (2 + 3 * order))
            flat = total.reshape(batch, beams * order)
            keep = min(self.k, flat.shape[1])
            chosen = np.argpartition(flat, keep - 1, axis=1)[:, :keep]
            peds = np.take_along_axis(flat, chosen, axis=1)
            parent = chosen // order
            symbol = chosen % order
            parent_paths = np.take_along_axis(
                paths, parent[:, :, None], axis=1
            )
            paths = np.concatenate([parent_paths, symbol[:, :, None]], axis=2)
        best_beam = np.argmin(peds, axis=1)
        winning = np.take_along_axis(
            paths, best_beam[:, None, None], axis=1
        )[:, 0, :]
        # Layout note: paths stores symbols top-level-first, so column j of
        # ``winning`` holds level ``Nt-1-j``; flip into level order.
        by_level = winning[:, ::-1]
        restored = context.qr.restore_order(by_level)
        return DetectionResult(indices=restored)
