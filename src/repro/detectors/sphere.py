"""Depth-first Schnorr–Euchner sphere decoder (exact ML).

This is the reproduction's stand-in for Geosphere [32]: a depth-first tree
search with sorted (Schnorr–Euchner) child enumeration and sphere-radius
pruning.  It returns exactly the ML solution and, being depth-first, adapts
its complexity to the channel — which is what Table 1 quantifies and why
it cannot be parallelised the way FlexCore can (§2).

Instrumentation: the decoder counts visited nodes and real arithmetic, and
those counts drive the Table 1 GFLOPS reproduction.

FLOP accounting per expanded node at level ``l`` (0-based from the bottom):
* interference sum: ``Nt-1-l`` complex multiplications;
* effective-point division by the (real) diagonal: 2 real mults;
* ``|Q|`` child partial-distance evaluations: 3 real mults each
  (|eff - q|^2 weighted by |R(l,l)|^2);
* the sort that orders children is charged as comparisons, not FLOPs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.detectors.base import DetectionResult, Detector
from repro.errors import ConfigurationError
from repro.mimo.qr import QrDecomposition, plain_qr, sorted_qr
from repro.mimo.system import MimoSystem
from repro.utils.flops import NULL_COUNTER, FlopCounter


@dataclass
class _SphereContext:
    qr: QrDecomposition
    diag: np.ndarray  # real positive diagonal of R
    weights: np.ndarray  # |R(l,l)|^2


class SphereDecoder(Detector):
    """Exact-ML depth-first sphere decoder with SE enumeration.

    Parameters
    ----------
    system:
        MIMO system description.
    qr_method:
        ``"sorted"`` (Wübben, default), ``"plain"``.
    max_nodes:
        Safety valve: abort a vector's search after this many node
        expansions and return the best leaf found so far (with SE
        enumeration the first leaf is the Babai point, so the fallback is
        a valid — if suboptimal — decision).  ``None`` disables the cap.
    """

    name = "sphere"

    def __init__(
        self,
        system: MimoSystem,
        qr_method: str = "sorted",
        max_nodes: int | None = None,
    ):
        super().__init__(system)
        if qr_method not in ("sorted", "plain"):
            raise ConfigurationError(f"unknown qr_method {qr_method!r}")
        self.qr_method = qr_method
        self.max_nodes = max_nodes

    def prepare(
        self,
        channel: np.ndarray,
        noise_var: float,
        counter: FlopCounter = NULL_COUNTER,
    ) -> _SphereContext:
        channel = self._check_channel(channel)
        if self.qr_method == "sorted":
            qr = sorted_qr(channel, counter=counter)
        else:
            qr = plain_qr(channel, counter=counter)
        diag = np.real(np.diagonal(qr.r)).copy()
        return _SphereContext(qr=qr, diag=diag, weights=diag**2)

    def detect_prepared(
        self,
        context: _SphereContext,
        received: np.ndarray,
        counter: FlopCounter = NULL_COUNTER,
    ) -> DetectionResult:
        received = self._check_received(received)
        rotated = context.qr.rotate_received(received)
        num_streams = self.system.num_streams
        out = np.empty((received.shape[0], num_streams), dtype=np.int64)
        nodes_total = 0
        for row in range(rotated.shape[0]):
            indices, nodes = self._search_single(context, rotated[row], counter)
            out[row] = indices
            nodes_total += nodes
        restored = context.qr.restore_order(out)
        return DetectionResult(
            indices=restored, metadata={"nodes_visited": nodes_total}
        )

    # ------------------------------------------------------------------
    def _search_single(
        self,
        context: _SphereContext,
        rotated: np.ndarray,
        counter: FlopCounter,
    ) -> tuple[np.ndarray, int]:
        """Depth-first search for one received vector.

        Levels are 0-based indices into R's rows; the search starts at the
        top level ``Nt - 1`` and leaves live at level 0.
        """
        points = self.system.constellation.points
        order_size = points.size
        num_streams = self.system.num_streams
        r = context.qr.r
        diag = context.diag
        weights = context.weights

        # Per-level DFS state.
        child_orders = [None] * num_streams  # sorted child index arrays
        child_peds = [None] * num_streams  # matching cumulative PEDs
        positions = np.zeros(num_streams, dtype=np.int64)
        chosen_symbols = np.zeros(num_streams, dtype=np.complex128)
        chosen_indices = np.zeros(num_streams, dtype=np.int64)
        parent_ped = np.zeros(num_streams + 1)  # parent_ped[l+1] feeds level l

        best_metric = np.inf
        best_indices = np.zeros(num_streams, dtype=np.int64)
        nodes = 0

        def expand(level: int) -> None:
            """Sort the children of the current node at ``level``."""
            nonlocal nodes
            interference = (
                r[level, level + 1 :] @ chosen_symbols[level + 1 :]
                if level + 1 < num_streams
                else 0.0
            )
            effective = (rotated[level] - interference) / diag[level]
            distances = weights[level] * np.abs(points - effective) ** 2
            order = np.argsort(distances)
            child_orders[level] = order
            child_peds[level] = parent_ped[level + 1] + distances[order]
            positions[level] = 0
            nodes += 1
            counter.add_complex_mults(num_streams - 1 - level)
            counter.add_real_mults(2)  # division by real diagonal
            counter.add_real_mults(3 * order_size)  # child PED evaluations
            counter.add_comparisons(
                int(order_size * np.log2(max(order_size, 2)))
            )
            counter.add_nodes(1)

        level = num_streams - 1
        expand(level)
        while True:
            if self.max_nodes is not None and nodes >= self.max_nodes:
                if not np.isfinite(best_metric):
                    # Fall back to the Babai (greedy SE) path at this node.
                    best_indices = chosen_indices.copy()
                    for fill in range(level, -1, -1):
                        best_indices[fill] = child_orders[fill][0] if (
                            child_orders[fill] is not None
                        ) else 0
                break
            position = positions[level]
            if position >= order_size or child_peds[level][position] >= best_metric:
                # Sorted children: everything further is worse. Backtrack.
                level += 1
                if level >= num_streams:
                    break
                positions[level] += 1
                continue
            chosen_indices[level] = child_orders[level][position]
            chosen_symbols[level] = points[chosen_indices[level]]
            if level == 0:
                metric = child_peds[level][position]
                if metric < best_metric:
                    best_metric = metric
                    best_indices = chosen_indices.copy()
                positions[level] += 1
                continue
            parent_ped[level] = child_peds[level][position]
            level -= 1
            expand(level)
        return best_indices, nodes
