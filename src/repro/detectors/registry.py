"""Name-based detector construction for experiment configuration files."""

from __future__ import annotations

from typing import Callable

from repro.detectors.base import Detector
from repro.errors import ConfigurationError
from repro.mimo.system import MimoSystem


def _build_flexcore(system: MimoSystem, **kwargs) -> Detector:
    from repro.flexcore.detector import FlexCoreDetector

    return FlexCoreDetector(system, **kwargs)


def _build_adaptive_flexcore(system: MimoSystem, **kwargs) -> Detector:
    from repro.flexcore.adaptive import AdaptiveFlexCoreDetector

    return AdaptiveFlexCoreDetector(system, **kwargs)


def _build_soft_flexcore(system: MimoSystem, **kwargs) -> Detector:
    from repro.flexcore.soft import SoftFlexCoreDetector

    return SoftFlexCoreDetector(system, **kwargs)


def _build_zf(system: MimoSystem, **kwargs) -> Detector:
    from repro.detectors.linear import ZfDetector

    return ZfDetector(system, **kwargs)


def _build_mmse(system: MimoSystem, **kwargs) -> Detector:
    from repro.detectors.linear import MmseDetector

    return MmseDetector(system, **kwargs)


def _build_sic(system: MimoSystem, **kwargs) -> Detector:
    from repro.detectors.sic import SicDetector

    return SicDetector(system, **kwargs)


def _build_ml(system: MimoSystem, **kwargs) -> Detector:
    from repro.detectors.ml import MlDetector

    return MlDetector(system, **kwargs)


def _build_sphere(system: MimoSystem, **kwargs) -> Detector:
    from repro.detectors.sphere import SphereDecoder

    return SphereDecoder(system, **kwargs)


def _build_kbest(system: MimoSystem, **kwargs) -> Detector:
    from repro.detectors.kbest import KBestDetector

    return KBestDetector(system, **kwargs)


def _build_kbest_adaptive(system: MimoSystem, **kwargs) -> Detector:
    from repro.detectors.kbest_adaptive import AdaptiveKBestDetector

    return AdaptiveKBestDetector(system, **kwargs)


def _build_lr_zf(system: MimoSystem, **kwargs) -> Detector:
    from repro.detectors.lattice import LrAidedZfDetector

    return LrAidedZfDetector(system, **kwargs)


def _build_fcsd(system: MimoSystem, **kwargs) -> Detector:
    from repro.detectors.fcsd import FcsdDetector

    return FcsdDetector(system, **kwargs)


def _build_trellis(system: MimoSystem, **kwargs) -> Detector:
    from repro.detectors.trellis import TrellisDetector

    return TrellisDetector(system, **kwargs)


_REGISTRY: dict[str, Callable[..., Detector]] = {
    "zf": _build_zf,
    "mmse": _build_mmse,
    "sic": _build_sic,
    "ml": _build_ml,
    "sphere": _build_sphere,
    "geosphere": _build_sphere,  # the paper's name for the exact-ML baseline
    "kbest": _build_kbest,
    "kbest-adaptive": _build_kbest_adaptive,
    "lr-zf": _build_lr_zf,
    "fcsd": _build_fcsd,
    "trellis": _build_trellis,
    "flexcore": _build_flexcore,
    "a-flexcore": _build_adaptive_flexcore,
    "soft-flexcore": _build_soft_flexcore,
}


def available_detectors() -> tuple[str, ...]:
    """Names accepted by :func:`make_detector`."""
    return tuple(sorted(_REGISTRY))


def make_detector(name: str, system: MimoSystem, **kwargs) -> Detector:
    """Instantiate a detector by registry name."""
    try:
        builder = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown detector {name!r}; options: {available_detectors()}"
        ) from None
    return builder(system, **kwargs)
