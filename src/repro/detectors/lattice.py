"""Lattice-reduction-aided detection (related work [15], §6).

The paper dismisses lattice reduction for large MIMO (sequential,
``O(Nt^4)``); this detector makes the comparison reproducible.  The
complex LLL reduction itself lives in :mod:`repro.mimo.lattice`.

The implementation works on the *unscaled integer lattice*: unit-energy
QAM symbols are an offset/scaled version of Gaussian integers, so the
detector maps received points to the shifted lattice
``z = (s / scale + (1+1j) * ones) / 2`` where plain rounding applies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.detectors.base import DetectionResult, Detector
from repro.mimo.lattice import clll_reduce
from repro.mimo.system import MimoSystem
from repro.utils.flops import NULL_COUNTER, FlopCounter


@dataclass
class _LrContext:
    reduced: np.ndarray
    transform: np.ndarray
    pseudo_inverse: np.ndarray


class LrAidedZfDetector(Detector):
    """Lattice-reduction-aided zero-forcing detection.

    Detection quantises in the reduced basis and maps back through the
    unimodular transform, then clamps to the constellation.  Near-ML for
    moderate sizes at a per-channel ``O(Nt^4)``-ish reduction cost — the
    trade-off §6 describes.
    """

    name = "lr-zf"

    def __init__(self, system: MimoSystem, delta: float = 0.75):
        super().__init__(system)
        self.delta = float(delta)

    def prepare(
        self,
        channel: np.ndarray,
        noise_var: float,
        counter: FlopCounter = NULL_COUNTER,
    ) -> _LrContext:
        channel = self._check_channel(channel)
        reduced, transform = clll_reduce(channel, delta=self.delta)
        counter.add_real_mults(4 * self.system.num_streams**4)
        return _LrContext(
            reduced=reduced,
            transform=transform,
            pseudo_inverse=np.linalg.pinv(reduced),
        )

    def detect_prepared(
        self,
        context: _LrContext,
        received: np.ndarray,
        counter: FlopCounter = NULL_COUNTER,
    ) -> DetectionResult:
        received = self._check_received(received)
        constellation = self.system.constellation
        scale = constellation.scale
        ones = np.ones(self.system.num_streams, dtype=np.complex128)
        offset = (1.0 + 1.0j) * ones

        # Work on the integer lattice: s = scale * (2 z - (1+1j) * 1), so
        # y = H s + n gives y / (2 scale) + (H o)/2 = H_red (T^-1 z) + n',
        # where T^-1 z stays Gaussian-integer because T is unimodular.
        channel_offset = (context.reduced @ np.linalg.inv(context.transform) @ offset)
        target = received / (2.0 * scale) + 0.5 * channel_offset[None, :]
        estimate = target @ context.pseudo_inverse.T  # T^-1 z per vector
        rounded = np.round(estimate.real) + 1j * np.round(estimate.imag)
        z = rounded @ context.transform.T  # back to the symbol domain
        symbols = scale * (2.0 * z - offset[None, :])
        counter.add_complex_mults(
            received.shape[0]
            * self.system.num_streams
            * (self.system.num_rx_antennas + self.system.num_streams)
        )
        indices = constellation.slice_to_index(symbols)
        return DetectionResult(indices=indices)
