"""Adaptive per-level K-best detection driven by FlexCore's model.

§6 of the paper observes that K-best detectors need large, fixed beam
widths for dense constellations — and that "using FlexCore's approach we
can adaptively select the value of K, which will differ per Sphere
decoding tree level."  This module implements that remark: the per-level
beam width is the smallest ``K`` whose cumulative rank probability
``sum_{k<=K} P_l(k)`` (Eq. 3) reaches a coverage target, so reliable
levels get narrow beams and shaky ones get wide beams.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.detectors.base import DetectionResult, Detector
from repro.errors import ConfigurationError
from repro.flexcore.probability import LevelErrorModel
from repro.mimo.qr import QrDecomposition, sorted_qr
from repro.mimo.system import MimoSystem
from repro.utils.flops import NULL_COUNTER, FlopCounter


def beam_widths_for_model(
    model: LevelErrorModel,
    coverage: float,
    max_width: int,
    min_width: int = 1,
) -> np.ndarray:
    """Per-level beam widths covering ``coverage`` probability mass.

    For a geometric rank distribution the smallest ``K`` with
    ``1 - Pe**K >= coverage`` is ``ceil(log(1-coverage)/log(Pe))``.
    """
    if not 0.0 < coverage < 1.0:
        raise ConfigurationError("coverage must lie in (0, 1)")
    pe = np.clip(model.pe, 1e-12, 1.0 - 1e-12)
    widths = np.ceil(np.log1p(-coverage) / np.log(pe)).astype(np.int64)
    return np.clip(widths, min_width, max_width)


@dataclass
class _AdaptiveKBestContext:
    qr: QrDecomposition
    diag: np.ndarray
    weights: np.ndarray
    beam_widths: np.ndarray  # per level, index 0 = bottom of the tree


class AdaptiveKBestDetector(Detector):
    """K-best with channel-adaptive per-level beam widths.

    Parameters
    ----------
    coverage:
        Rank-probability mass each level's beam must cover (default
        0.99).
    max_width:
        Upper clamp on any level's width (defaults to ``|Q|``).
    """

    name = "kbest-adaptive"

    def __init__(
        self,
        system: MimoSystem,
        coverage: float = 0.99,
        max_width: int | None = None,
    ):
        super().__init__(system)
        if not 0.0 < coverage < 1.0:
            raise ConfigurationError("coverage must lie in (0, 1)")
        self.coverage = float(coverage)
        self.max_width = int(max_width or system.constellation.order)

    def prepare(
        self,
        channel: np.ndarray,
        noise_var: float,
        counter: FlopCounter = NULL_COUNTER,
    ) -> _AdaptiveKBestContext:
        channel = self._check_channel(channel)
        qr = sorted_qr(channel, counter=counter)
        model = LevelErrorModel.from_channel(
            qr.r, noise_var, self.system.constellation
        )
        widths = beam_widths_for_model(model, self.coverage, self.max_width)
        diag = np.real(np.diagonal(qr.r)).copy()
        return _AdaptiveKBestContext(
            qr=qr, diag=diag, weights=diag**2, beam_widths=widths
        )

    def detect_prepared(
        self,
        context: _AdaptiveKBestContext,
        received: np.ndarray,
        counter: FlopCounter = NULL_COUNTER,
    ) -> DetectionResult:
        received = self._check_received(received)
        rotated = context.qr.rotate_received(received)
        constellation = self.system.constellation
        points = constellation.points
        order = constellation.order
        num_streams = self.system.num_streams
        batch = received.shape[0]
        r = context.qr.r
        top = num_streams - 1

        # Beam survival count after processing level l is the cumulative
        # product budget — but the plain construction (keep width[l] of
        # the expansions) is what §6's remark describes.
        effective = rotated[:, top][:, None] / context.diag[top]
        child = context.weights[top] * np.abs(effective - points[None, :]) ** 2
        counter.add_real_mults(batch * (2 + 3 * order))
        keep = int(min(context.beam_widths[top], order))
        best = np.argsort(child, axis=1)[:, :keep]
        peds = np.take_along_axis(child, best, axis=1)
        paths = best[:, :, None]

        for level in range(top - 1, -1, -1):
            beams = paths.shape[1]
            symbols = points[paths]
            row = r[level, level + 1 :]
            interference = symbols[:, :, ::-1] @ row
            effective = (
                rotated[:, level][:, None] - interference
            ) / context.diag[level]
            child = (
                context.weights[level]
                * np.abs(effective[:, :, None] - points[None, None, :]) ** 2
            )
            total = peds[:, :, None] + child
            counter.add_complex_mults(batch * beams * (num_streams - 1 - level))
            counter.add_real_mults(batch * beams * (2 + 3 * order))
            flat = total.reshape(batch, beams * order)
            # Survivors after this level: width[level] per live beam,
            # bounded by the global pool of candidates.
            keep = int(
                min(context.beam_widths[level] * beams, flat.shape[1],
                    self.max_width)
            )
            chosen = np.argpartition(flat, keep - 1, axis=1)[:, :keep]
            peds = np.take_along_axis(flat, chosen, axis=1)
            parent = chosen // order
            symbol = chosen % order
            parent_paths = np.take_along_axis(paths, parent[:, :, None], axis=1)
            paths = np.concatenate([parent_paths, symbol[:, :, None]], axis=2)
        best_beam = np.argmin(peds, axis=1)
        winning = np.take_along_axis(paths, best_beam[:, None, None], axis=1)[
            :, 0, :
        ]
        restored = context.qr.restore_order(winning[:, ::-1])
        return DetectionResult(
            indices=restored,
            metadata={"beam_widths": context.beam_widths.tolist()},
        )
