"""MIMO detectors: the paper's baselines plus shared infrastructure.

FlexCore itself lives in :mod:`repro.flexcore`; it implements the same
:class:`~repro.detectors.base.Detector` interface so link-level harnesses
can treat every scheme uniformly.
"""

from repro.detectors.base import DetectionResult, Detector
from repro.detectors.fcsd import FcsdDetector
from repro.detectors.kbest import KBestDetector
from repro.detectors.kbest_adaptive import AdaptiveKBestDetector
from repro.detectors.lattice import LrAidedZfDetector
from repro.detectors.linear import MmseDetector, ZfDetector
from repro.detectors.ml import MlDetector
from repro.detectors.registry import available_detectors, make_detector
from repro.detectors.sic import SicDetector
from repro.detectors.sphere import SphereDecoder
from repro.detectors.trellis import TrellisDetector

__all__ = [
    "AdaptiveKBestDetector",
    "DetectionResult",
    "Detector",
    "FcsdDetector",
    "KBestDetector",
    "LrAidedZfDetector",
    "MlDetector",
    "MmseDetector",
    "SicDetector",
    "SphereDecoder",
    "TrellisDetector",
    "ZfDetector",
    "available_detectors",
    "make_detector",
]
