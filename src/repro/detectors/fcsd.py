"""Fixed Complexity Sphere Decoder (FCSD, Barbero & Thompson [4]).

The state-of-the-art parallel baseline the paper compares against: the top
``L`` tree levels are *fully expanded* (all ``|Q|**L`` combinations) and
every remaining level is decided greedily by slicing.  All ``|Q|**L``
paths are independent, so the scheme parallelises — but only in units of
``|Q|**L`` processing elements, cannot focus work on promising paths, and
cannot adapt to channel conditions (§2's three drawbacks).

The implementation is vectorised across received vectors x paths with
memory-bounded chunking.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.detectors.base import DetectionResult, Detector
from repro.errors import ConfigurationError
from repro.mimo.qr import QrDecomposition, fcsd_sorted_qr, sorted_qr
from repro.mimo.system import MimoSystem
from repro.utils.flops import NULL_COUNTER, FlopCounter

#: Upper bound on (batch-chunk x paths) elements held live at once.
MAX_CHUNK_ELEMENTS = 1 << 18


@dataclass
class _FcsdContext:
    qr: QrDecomposition
    diag: np.ndarray
    weights: np.ndarray
    path_assignments: np.ndarray  # (paths, L) symbol indices for top levels


class FcsdDetector(Detector):
    """FCSD with ``L`` fully-expanded levels.

    Parameters
    ----------
    num_expanded:
        ``L``; the detector evaluates ``|Q|**L`` parallel paths.
    qr_method:
        ``"fcsd"`` (Barbero-Thompson ordering, default) or ``"sorted"``
        (Wübben); §5.1 tries both and keeps the better.
    """

    name = "fcsd"

    def __init__(
        self,
        system: MimoSystem,
        num_expanded: int = 1,
        qr_method: str = "fcsd",
    ):
        super().__init__(system)
        if not 0 <= num_expanded <= system.num_streams:
            raise ConfigurationError(
                f"num_expanded must lie in [0, {system.num_streams}]"
            )
        if qr_method not in ("fcsd", "sorted"):
            raise ConfigurationError(f"unknown qr_method {qr_method!r}")
        self.num_expanded = int(num_expanded)
        self.qr_method = qr_method

    @property
    def num_paths(self) -> int:
        """Parallel paths (= processing elements at minimum latency)."""
        return self.system.constellation.order**self.num_expanded

    def prepare(
        self,
        channel: np.ndarray,
        noise_var: float,
        counter: FlopCounter = NULL_COUNTER,
    ) -> _FcsdContext:
        channel = self._check_channel(channel)
        if self.qr_method == "fcsd":
            qr = fcsd_sorted_qr(
                channel, self.num_expanded, noise_var, counter=counter
            )
        else:
            qr = sorted_qr(channel, counter=counter)
        diag = np.real(np.diagonal(qr.r)).copy()
        order = self.system.constellation.order
        if self.num_expanded:
            grids = np.indices((order,) * self.num_expanded)
            assignments = grids.reshape(self.num_expanded, -1).T
        else:
            assignments = np.zeros((1, 0), dtype=np.int64)
        return _FcsdContext(
            qr=qr,
            diag=diag,
            weights=diag**2,
            path_assignments=assignments.astype(np.int64),
        )

    def detect_prepared(
        self,
        context: _FcsdContext,
        received: np.ndarray,
        counter: FlopCounter = NULL_COUNTER,
    ) -> DetectionResult:
        received = self._check_received(received)
        rotated = context.qr.rotate_received(received)
        paths = context.path_assignments.shape[0]
        chunk = max(1, MAX_CHUNK_ELEMENTS // paths)
        pieces = []
        for start in range(0, rotated.shape[0], chunk):
            block = rotated[start : start + chunk]
            pieces.append(self._detect_chunk(context, block, counter))
        indices = np.concatenate(pieces, axis=0)
        restored = context.qr.restore_order(indices)
        return DetectionResult(
            indices=restored, metadata={"paths": paths}
        )

    def _detect_chunk(
        self,
        context: _FcsdContext,
        rotated: np.ndarray,
        counter: FlopCounter,
    ) -> np.ndarray:
        constellation = self.system.constellation
        points = constellation.points
        num_streams = self.system.num_streams
        batch = rotated.shape[0]
        paths = context.path_assignments.shape[0]
        r = context.qr.r

        symbols = np.zeros((batch, paths, num_streams), dtype=np.complex128)
        indices = np.zeros((batch, paths, num_streams), dtype=np.int64)
        ped = np.zeros((batch, paths))
        first_greedy = num_streams - self.num_expanded
        for level in range(num_streams - 1, -1, -1):
            if level + 1 < num_streams:
                interference = symbols[:, :, level + 1 :] @ r[level, level + 1 :]
            else:
                interference = np.zeros((batch, paths))
            effective = (
                rotated[:, level][:, None] - interference
            ) / context.diag[level]
            if level >= first_greedy:
                column = num_streams - 1 - level
                level_indices = np.broadcast_to(
                    context.path_assignments[:, column][None, :], (batch, paths)
                )
            else:
                level_indices = constellation.slice_to_index(effective)
            symbols[:, :, level] = points[level_indices]
            indices[:, :, level] = level_indices
            ped += context.weights[level] * (
                np.abs(effective - symbols[:, :, level]) ** 2
            )
            counter.add_complex_mults(batch * paths * (num_streams - 1 - level))
            counter.add_real_mults(batch * paths * 5)
        best = np.argmin(ped, axis=1)
        return np.take_along_axis(
            indices, best[:, None, None], axis=1
        )[:, 0, :]
