"""Batched multi-subcarrier uplink detection runtime.

The paper's throughput story has two systems ingredients on top of the
FlexCore algorithm: amortise per-channel pre-processing over the
coherence time (§4) and spread the embarrassingly-parallel per-subcarrier
problems across execution resources (§5.2).  This package provides both
as a detector-agnostic runtime:

* :class:`UplinkBatch` / :class:`BatchDetectionResult` — the
  ``(subcarriers x frames)`` workload and its stacked output;
* :class:`ContextCache` — content-addressed coherence cache of prepared
  channel contexts, with a stacked-QR block-prepare path for misses;
* :class:`SerialBackend` / :class:`ProcessPoolBackend` /
  :class:`ArrayBackend` — pluggable execution backends: per-subcarrier
  loop, sharded worker pool, or one stacked ``(S, F, P, Nt)`` tensor
  walk on a numpy/cupy/torch array module (``REPRO_ARRAY_BACKEND``);
* :class:`BatchedUplinkEngine` — the façade the link simulator, the
  experiment harness and the examples drive.
"""

from repro.runtime.backends import (
    ArrayBackend,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    available_backends,
    make_backend,
)
from repro.runtime.batch import BatchDetectionResult, UplinkBatch
from repro.runtime.cache import ContextCache, context_key
from repro.runtime.engine import BatchedUplinkEngine
from repro.runtime.xp import (
    ARRAY_BACKEND_ENV,
    ArrayModule,
    available_array_modules,
    resolve_array_module,
)

__all__ = [
    "ARRAY_BACKEND_ENV",
    "ArrayBackend",
    "ArrayModule",
    "BatchDetectionResult",
    "BatchedUplinkEngine",
    "ContextCache",
    "ExecutionBackend",
    "ProcessPoolBackend",
    "SerialBackend",
    "UplinkBatch",
    "available_array_modules",
    "available_backends",
    "context_key",
    "make_backend",
    "resolve_array_module",
]
