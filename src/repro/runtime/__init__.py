"""Batched multi-subcarrier uplink detection runtime.

The paper's throughput story has two systems ingredients on top of the
FlexCore algorithm: amortise per-channel pre-processing over the
coherence time (§4) and spread the embarrassingly-parallel per-subcarrier
problems across execution resources (§5.2).  This package provides both
as a detector-agnostic runtime:

* :class:`UplinkBatch` / :class:`BatchDetectionResult` — the
  ``(subcarriers x frames)`` workload and its stacked output;
* :class:`ContextCache` — content-addressed coherence cache of prepared
  channel contexts;
* :class:`SerialBackend` / :class:`ProcessPoolBackend` — pluggable
  execution backends sharding subcarriers;
* :class:`BatchedUplinkEngine` — the façade the link simulator, the
  experiment harness and the examples drive.
"""

from repro.runtime.backends import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    available_backends,
    make_backend,
)
from repro.runtime.batch import BatchDetectionResult, UplinkBatch
from repro.runtime.cache import ContextCache, context_key
from repro.runtime.engine import BatchedUplinkEngine

__all__ = [
    "BatchDetectionResult",
    "BatchedUplinkEngine",
    "ContextCache",
    "ExecutionBackend",
    "ProcessPoolBackend",
    "SerialBackend",
    "UplinkBatch",
    "available_backends",
    "context_key",
    "make_backend",
]
