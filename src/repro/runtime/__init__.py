"""Batched and streaming multi-subcarrier uplink detection runtime.

The paper's throughput story has two systems ingredients on top of the
FlexCore algorithm: amortise per-channel pre-processing over the
coherence time (§4) and spread the embarrassingly-parallel per-subcarrier
problems across execution resources (§5.2).  This package provides both
as a detector-agnostic runtime, layered service-side down:

* :class:`DetectionService` — the cell-agnostic prepare+detect block
  path over one execution backend; detector and cache are per call;
* :class:`StreamingScheduler` / :class:`MicroBatcher` — the asyncio
  slot-deadline front-end: :class:`FrameArrival` events are grouped by
  coherence key and flushed on a batch target or the LTE 500 µs slot
  deadline, with per-flush latency/deadline telemetry;
* :class:`Cell` / :class:`CellFarm` / :class:`StreamingUplinkEngine` —
  multi-cell sharding: N cells share one backend with fair-share
  dispatch but keep per-cell context caches and stats;
* :class:`BatchedUplinkEngine` — the synchronous batch adapter the link
  simulator, the experiment harness and the examples drive;
* :class:`UplinkBatch` / :class:`BatchDetectionResult` — the
  ``(subcarriers x frames)`` workload and its stacked output;
* :class:`ContextCache` / :class:`CacheStats` — content-addressed
  coherence cache of prepared channel contexts, with a stacked-QR
  block-prepare path for misses;
* :class:`SerialBackend` / :class:`ProcessPoolBackend` /
  :class:`ArrayBackend` — pluggable execution backends: per-subcarrier
  loop, sharded worker pool, or one stacked ``(S, F, P, Nt)`` tensor
  walk on a numpy/cupy/torch array module (``REPRO_ARRAY_BACKEND``).
"""

from repro.runtime.backends import (
    ArrayBackend,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    available_backends,
    make_backend,
)
from repro.runtime.batch import (
    BatchDetectionResult,
    RuntimeStats,
    UplinkBatch,
)
from repro.runtime.cache import (
    CacheStats,
    ContextCache,
    block_context_keys,
    context_key,
)
from repro.runtime.cells import (
    Cell,
    CellFarm,
    CellStats,
    StreamingUplinkEngine,
)
from repro.runtime.engine import BatchedUplinkEngine
from repro.runtime.residency import ResidencyStats, ResidentContextStore
from repro.runtime.scheduler import (
    FlushRecord,
    FrameArrival,
    FrameDetection,
    MicroBatcher,
    SchedulerTelemetry,
    StreamingScheduler,
    merge_scheduler_summaries,
)
from repro.runtime.service import DetectionService, clamp_context_paths
from repro.runtime.xp import (
    ARRAY_BACKEND_ENV,
    ArrayModule,
    CountingArrayModule,
    TransferStats,
    available_array_modules,
    resolve_array_module,
)

__all__ = [
    "ARRAY_BACKEND_ENV",
    "ArrayBackend",
    "ArrayModule",
    "BatchDetectionResult",
    "BatchedUplinkEngine",
    "CacheStats",
    "Cell",
    "CellFarm",
    "CellStats",
    "ContextCache",
    "CountingArrayModule",
    "DetectionService",
    "ExecutionBackend",
    "FlushRecord",
    "FrameArrival",
    "FrameDetection",
    "MicroBatcher",
    "ProcessPoolBackend",
    "ResidencyStats",
    "ResidentContextStore",
    "RuntimeStats",
    "SchedulerTelemetry",
    "SerialBackend",
    "TransferStats",
    "StreamingScheduler",
    "StreamingUplinkEngine",
    "UplinkBatch",
    "available_array_modules",
    "available_backends",
    "clamp_context_paths",
    "block_context_keys",
    "context_key",
    "make_backend",
    "merge_scheduler_summaries",
    "resolve_array_module",
]
