"""Channel-coherence-aware context cache.

§4 of the paper amortises pre-processing (QR, error-probability model,
position-vector upload) over the coherence time of the channel: the same
context serves every OFDM symbol — and every retransmission — until the
channel changes.  The link layer expresses that coherence implicitly by
handing the engine *identical channel matrices* (a testbed trace cycling
its frames, a static packet channel); the cache recovers the amortisation
by content-addressing contexts on the channel bytes, with no explicit
coherence bookkeeping required from the caller.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.flops import NULL_COUNTER, FlopCounter


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time snapshot of a :class:`ContextCache`.

    ``hits``/``misses``/``evictions`` are counters (lifetime, or a batch
    delta when the snapshot came from
    :meth:`ContextCache.stats.since <CacheStats.since>`); ``entries`` is
    the resident context count at snapshot time.  The runtime surfaces
    one of these per batch in
    :attr:`repro.runtime.batch.BatchDetectionResult.stats` under the
    ``"cache"`` key — one per cell when the workload is sharded across a
    cell farm.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    entries: int = 0

    def __getitem__(self, key: str):
        # Mapping-style access keeps pre-snapshot call sites
        # (``stats["entries"]``) working while they migrate to
        # attributes.
        if key in ("hits", "misses", "evictions", "entries"):
            return getattr(self, key)
        raise KeyError(key)

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": self.entries,
        }

    def since(self, before: "CacheStats") -> "CacheStats":
        """Counter deltas relative to an earlier snapshot.

        ``entries`` is not a counter, so the newer snapshot's value is
        kept as-is.
        """
        return CacheStats(
            hits=self.hits - before.hits,
            misses=self.misses - before.misses,
            evictions=self.evictions - before.evictions,
            entries=self.entries,
        )


def context_key(channel: np.ndarray, noise_var: float) -> bytes:
    """Content digest identifying one ``prepare`` input.

    Detector contexts are pure functions of ``(channel, noise_var)`` —
    the batching contract on :meth:`repro.detectors.base.Detector.prepare`
    — so equal digests imply interchangeable contexts.
    """
    channel = np.ascontiguousarray(channel)
    digest = hashlib.blake2b(digest_size=16)
    digest.update(str(channel.shape).encode())
    digest.update(np.float64(noise_var).tobytes())
    digest.update(channel.tobytes())
    return digest.digest()


def block_context_keys(
    channels: np.ndarray, noise_var: float
) -> list[bytes]:
    """Per-subcarrier context keys for a ``(S, Nr, Nt)`` channel block.

    Byte-identical to ``[context_key(channels[sc], noise_var) for sc in
    ...]`` — contexts cached under one spelling are found under the
    other — but the shared shape/noise digest prefix is hashed once and
    the per-slice ``ascontiguousarray`` copy is skipped entirely when
    the block is already contiguous (slices of a C-contiguous block are
    C-contiguous; one whole-block copy covers the rest).
    """
    channels = np.asarray(channels)
    if channels.ndim != 3:
        raise ConfigurationError(
            f"block_context_keys wants a (S, Nr, Nt) block, got "
            f"{channels.shape}"
        )
    if not channels.flags["C_CONTIGUOUS"]:
        channels = np.ascontiguousarray(channels)
    prefix = (
        str(channels.shape[1:]).encode() + np.float64(noise_var).tobytes()
    )
    keys = []
    for sc in range(channels.shape[0]):
        digest = hashlib.blake2b(digest_size=16)
        digest.update(prefix)
        digest.update(channels[sc].tobytes())
        keys.append(digest.digest())
    return keys


class ContextCache:
    """LRU cache of prepared channel contexts.

    One cache serves one detector configuration (the engine owns it);
    sharing a cache between differently-configured detectors would serve
    wrong contexts, so :class:`~repro.runtime.engine.BatchedUplinkEngine`
    never exposes its cache for reuse across detectors.

    Parameters
    ----------
    max_entries:
        LRU capacity.  Sized to cover one coherence block of subcarriers
        (48 for 20 MHz Wi-Fi, 1200 for 20 MHz LTE) times the number of
        distinct noise operating points probed concurrently.
    """

    def __init__(self, max_entries: int = 1024):
        if max_entries <= 0:
            raise ConfigurationError("cache needs at least one entry")
        self.max_entries = int(max_entries)
        self._entries: OrderedDict[bytes, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    def get_or_prepare(
        self,
        detector,
        channel: np.ndarray,
        noise_var: float,
        counter: FlopCounter = NULL_COUNTER,
    ) -> Any:
        """Serve ``detector.prepare(channel, noise_var)`` with coherence reuse.

        A hit charges nothing to ``counter`` — the amortisation being
        measured; a miss runs ``prepare`` (charging its FLOPs) and caches
        the context.
        """
        key = context_key(channel, noise_var)
        try:
            context = self._entries[key]
        except KeyError:
            self.misses += 1
            context = detector.prepare(channel, noise_var, counter=counter)
            self._entries[key] = context
            if len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
        else:
            self.hits += 1
            self._entries.move_to_end(key)
        return context

    def get_or_prepare_block(
        self,
        detector,
        channels: np.ndarray,
        noise_var: float,
        counter: FlopCounter = NULL_COUNTER,
    ) -> list:
        """Serve a whole ``(S, Nr, Nt)`` coherence block of contexts.

        Cache misses are deduplicated and prepared in one
        ``detector.prepare_many`` call — the stacked-QR fast path — then
        the block replays the exact per-subcarrier LRU bookkeeping, so
        hit/miss/eviction statistics and charged FLOPs are identical to
        calling :meth:`get_or_prepare` once per subcarrier.
        """
        channels = np.asarray(channels)
        keys = block_context_keys(channels, noise_var)
        fresh_slots: "OrderedDict[bytes, int]" = OrderedDict()
        for sc, key in enumerate(keys):
            if key not in self._entries and key not in fresh_slots:
                fresh_slots[key] = sc
        fresh: dict[bytes, Any] = {}
        if fresh_slots:
            prepared = detector.prepare_many(
                channels[list(fresh_slots.values())], noise_var,
                counter=counter,
            )
            fresh = dict(zip(fresh_slots, prepared))
        contexts = []
        for key, channel_index in zip(keys, range(channels.shape[0])):
            try:
                context = self._entries[key]
            except KeyError:
                self.misses += 1
                context = fresh.pop(key, None)
                if context is None:
                    # A duplicate key whose first insertion was already
                    # evicted (cache smaller than the block): re-prepare,
                    # exactly as the serial loop would.
                    context = detector.prepare(
                        channels[channel_index], noise_var, counter=counter
                    )
                self._entries[key] = context
                if len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
                    self.evictions += 1
            else:
                self.hits += 1
                self._entries.move_to_end(key)
            contexts.append(context)
        return contexts

    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Drop all contexts (e.g. on a coherence-interval boundary)."""
        self._entries.clear()

    @property
    def stats(self) -> CacheStats:
        """Lifetime counters plus current occupancy as a snapshot."""
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            entries=len(self._entries),
        )
