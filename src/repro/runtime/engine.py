"""The batched uplink detection engine — a thin batch adapter.

:class:`BatchedUplinkEngine` drives any registered detector over whole
``(subcarriers x frames)`` uplink batches instead of one received vector
at a time.  It supplies the two systems-level wins the paper builds its
throughput argument on:

* **Coherence amortisation** (§4): contexts — QR, the level-error model,
  FlexCore's position vectors — are prepared once per distinct
  ``(channel, noise_var)`` and served from a content-addressed cache for
  every frame and every recurrence of that channel.
* **Subcarrier parallelism** (§5.2): the independent per-subcarrier
  detection problems run on an execution backend — in-process
  ``serial``, a ``process-pool`` sharding subcarrier ranges the way the
  paper spreads them across CUDA streams and devices, or ``array``,
  which stacks every subcarrier of equal path count into one
  ``(S, F, P, Nt)`` tensor walk on a pluggable array module.

Since the service extraction, the heavy lifting — context preparation,
backend dispatch, the stacked tensor walk, shard bookkeeping — lives in
the cell-agnostic :class:`~repro.runtime.service.DetectionService`.
The engine binds one detector and one private
:class:`~repro.runtime.cache.ContextCache` to a service and exposes the
synchronous batch API the link simulator and the experiment harness
drive.  The streaming front-ends (:mod:`repro.runtime.scheduler`,
:mod:`repro.runtime.cells`) sit on the same service.
"""

from __future__ import annotations

import numpy as np

from repro.detectors.base import Detector
from repro.errors import ConfigurationError
from repro.runtime.backends import ExecutionBackend
from repro.runtime.batch import BatchDetectionResult, UplinkBatch
from repro.runtime.cache import CacheStats, ContextCache
from repro.runtime.service import (  # noqa: F401  (re-exported for compat)
    DetectionService,
    _detect_block,
    _run_shard,
)
from repro.utils.flops import NULL_COUNTER, FlopCounter


class BatchedUplinkEngine:
    """Batched, cached, sharded uplink detection around one detector.

    Parameters
    ----------
    detector:
        The detector instance to drive.  Use
        :func:`repro.detectors.registry.make_detector` to build one by
        name.
    backend:
        ``"serial"`` (default), ``"process-pool"``, ``"array"`` (stacked
        tensor walk; array module from ``REPRO_ARRAY_BACKEND`` unless an
        :class:`~repro.runtime.backends.ArrayBackend` is pre-built with
        one), any pre-built
        :class:`~repro.runtime.backends.ExecutionBackend`, or a shared
        :class:`~repro.runtime.service.DetectionService`.
    cache_contexts:
        Enable the coherence context cache.  Disabling forces one
        ``prepare`` per subcarrier per call — the naive baseline the
        runtime benchmark measures against.
    max_cache_entries:
        LRU capacity of the context cache.
    obs:
        An :class:`~repro.obs.Observability` hub for span tracing and
        metrics, passed through to the service the engine creates (a
        shared pre-built service keeps its own).
    """

    def __init__(
        self,
        detector: Detector,
        backend: "str | ExecutionBackend | DetectionService" = "serial",
        cache_contexts: bool = True,
        max_cache_entries: int = 1024,
        obs=None,
    ):
        if not isinstance(detector, Detector):
            raise ConfigurationError(
                "BatchedUplinkEngine needs a Detector instance, got "
                f"{type(detector).__name__}"
            )
        self.detector = detector
        if isinstance(backend, DetectionService):
            self.service = backend
            self._owns_service = False
        else:
            self.service = DetectionService(backend, obs=obs)
            self._owns_service = True
        self.cache_contexts = bool(cache_contexts)
        self._cache = ContextCache(max_entries=max_cache_entries)
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def backend(self) -> ExecutionBackend:
        """The execution backend the bound service runs on."""
        return self.service.backend

    @property
    def obs(self):
        """The bound service's observability hub (``None`` untraced)."""
        return self.service.obs

    @property
    def supports_soft(self) -> bool:
        """Whether the wrapped detector produces per-bit LLRs."""
        return hasattr(self.detector, "detect_soft_prepared")

    @property
    def cache_stats(self) -> CacheStats:
        """Lifetime hit/miss/eviction snapshot of the context cache."""
        return self._cache.stats

    def clear_cache(self) -> None:
        """Invalidate cached contexts (coherence-interval boundary)."""
        self._cache.clear()

    def close(self) -> None:
        """Release backend resources, unless the service is shared.

        Idempotent for owned *and* shared services: a second ``close``
        (a ``with`` block around an engine someone also closed
        explicitly, say) is a no-op either way, and closing an engine
        that merely borrows a shared service never tears that service
        down for its other users.
        """
        if self._closed:
            return
        self._closed = True
        if self._owns_service:
            self.service.close()

    def __enter__(self) -> "BatchedUplinkEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def detect_batch(
        self,
        channels,
        received=None,
        noise_var: float | None = None,
        counter: FlopCounter = NULL_COUNTER,
        use_soft: bool = False,
    ) -> BatchDetectionResult:
        """Detect an uplink batch.

        Accepts either an :class:`~repro.runtime.batch.UplinkBatch` or the
        raw ``(channels, received, noise_var)`` triple with shapes
        ``(S, Nr, Nt)`` / ``(S, F, Nr)``.
        """
        if isinstance(channels, UplinkBatch):
            batch = channels
        else:
            batch = UplinkBatch(
                channels=channels, received=received, noise_var=noise_var
            )
        return self.service.detect(
            self.detector,
            batch,
            cache=self._cache if self.cache_contexts else None,
            counter=counter,
            use_soft=use_soft,
        )

    def detect(
        self,
        channel: np.ndarray,
        received: np.ndarray,
        noise_var: float,
        counter: FlopCounter = NULL_COUNTER,
    ):
        """Single-subcarrier convenience mirroring ``Detector.detect``,
        but serving ``prepare`` through the coherence cache."""
        if self.cache_contexts:
            context = self._cache.get_or_prepare(
                self.detector, channel, noise_var, counter=counter
            )
        else:
            context = self.detector.prepare(
                channel, noise_var, counter=counter
            )
        return self.detector.detect_prepared(context, received, counter=counter)
