"""The batched uplink detection engine.

:class:`BatchedUplinkEngine` drives any registered detector over whole
``(subcarriers x frames)`` uplink batches instead of one received vector
at a time.  It supplies the two systems-level wins the paper builds its
throughput argument on:

* **Coherence amortisation** (§4): contexts — QR, the level-error model,
  FlexCore's position vectors — are prepared once per distinct
  ``(channel, noise_var)`` and served from a content-addressed cache for
  every frame and every recurrence of that channel.
* **Subcarrier parallelism** (§5.2): the independent per-subcarrier
  detection problems run on an execution backend — in-process
  ``serial``, a ``process-pool`` sharding subcarrier ranges the way the
  paper spreads them across CUDA streams and devices, or ``array``,
  which stacks every subcarrier of equal path count into one
  ``(S, F, P, Nt)`` tensor walk on a pluggable array module
  (numpy/cupy/torch — the paper's massively-parallel execution model).

The engine is detector-agnostic: anything satisfying the
:class:`~repro.detectors.base.Detector` contract (hard output) works, and
detectors exposing ``detect_soft_prepared`` gain batched LLR output.
"""

from __future__ import annotations

import numpy as np

from repro.detectors.base import Detector
from repro.errors import ConfigurationError, LinkSimulationError
from repro.runtime.backends import (
    ArrayBackend,
    ExecutionBackend,
    SerialBackend,
    make_backend,
)
from repro.runtime.batch import BatchDetectionResult, UplinkBatch
from repro.runtime.cache import ContextCache
from repro.utils.flops import NULL_COUNTER, FlopCounter


def _detect_block(
    detector,
    channels: np.ndarray,
    received: np.ndarray,
    noise_var: float,
    contexts: "list | None",
    counter: FlopCounter,
    use_soft: bool,
) -> tuple[np.ndarray, np.ndarray | None, list]:
    """Detect a ``(s, F, Nr)`` block, one context per subcarrier.

    ``contexts`` supplies pre-prepared channel contexts (the cached
    path); ``None`` means prepare inline, once per subcarrier with no
    deduplication — the honest uncached baseline.
    """
    num_sc, num_frames, _ = received.shape
    num_streams = detector.system.num_streams
    indices = np.empty((num_sc, num_frames, num_streams), dtype=np.int64)
    llrs = None
    if use_soft:
        width = num_streams * detector.system.constellation.bits_per_symbol
        llrs = np.empty((num_sc, num_frames, width))
    metadata = []
    for sc in range(num_sc):
        if contexts is None:
            context = detector.prepare(
                channels[sc], noise_var, counter=counter
            )
        else:
            context = contexts[sc]
        if use_soft:
            result = detector.detect_soft_prepared(
                context, received[sc], noise_var, counter=counter
            )
            llrs[sc] = result.llrs
        else:
            result = detector.detect_prepared(
                context, received[sc], counter=counter
            )
        indices[sc] = result.indices
        metadata.append(result.metadata)
    return indices, llrs, metadata


def _run_shard(payload) -> tuple:
    """Process-pool entry point: detect one shard.

    On the cached path the parent has already prepared the shard's
    contexts through its persistent cache and ships them in the payload
    (contexts are plain numpy dataclasses, cheap to pickle), so workers
    only detect.  With caching disabled the worker runs ``prepare`` per
    subcarrier itself.  FLOP totals travel back as plain ints for the
    parent to merge.
    """
    (
        detector,
        channels,
        received,
        noise_var,
        use_soft,
        count_flops,
        contexts,
    ) = payload
    counter = FlopCounter() if count_flops else NULL_COUNTER
    indices, llrs, metadata = _detect_block(
        detector, channels, received, noise_var, contexts, counter, use_soft
    )
    flops = (
        (
            counter.real_mults,
            counter.real_adds,
            counter.comparisons,
            counter.nodes_visited,
        )
        if count_flops
        else (0, 0, 0, 0)
    )
    return indices, llrs, metadata, flops


class BatchedUplinkEngine:
    """Batched, cached, sharded uplink detection around one detector.

    Parameters
    ----------
    detector:
        The detector instance to drive.  Use
        :func:`repro.detectors.registry.make_detector` to build one by
        name.
    backend:
        ``"serial"`` (default), ``"process-pool"``, ``"array"`` (stacked
        tensor walk; array module from ``REPRO_ARRAY_BACKEND`` unless an
        :class:`~repro.runtime.backends.ArrayBackend` is pre-built with
        one), or any pre-built
        :class:`~repro.runtime.backends.ExecutionBackend`.
    cache_contexts:
        Enable the coherence context cache.  Disabling forces one
        ``prepare`` per subcarrier per call — the naive baseline the
        runtime benchmark measures against.
    max_cache_entries:
        LRU capacity of the context cache.
    """

    def __init__(
        self,
        detector: Detector,
        backend: "str | ExecutionBackend" = "serial",
        cache_contexts: bool = True,
        max_cache_entries: int = 1024,
    ):
        if not isinstance(detector, Detector):
            raise ConfigurationError(
                "BatchedUplinkEngine needs a Detector instance, got "
                f"{type(detector).__name__}"
            )
        self.detector = detector
        self.backend = make_backend(backend)
        self.cache_contexts = bool(cache_contexts)
        self._cache = ContextCache(max_entries=max_cache_entries)

    # ------------------------------------------------------------------
    @property
    def supports_soft(self) -> bool:
        """Whether the wrapped detector produces per-bit LLRs."""
        return hasattr(self.detector, "detect_soft_prepared")

    @property
    def cache_stats(self) -> dict:
        """Lifetime hit/miss/eviction counts of the context cache."""
        return self._cache.stats

    def clear_cache(self) -> None:
        """Invalidate cached contexts (coherence-interval boundary)."""
        self._cache.clear()

    def close(self) -> None:
        self.backend.close()

    def __enter__(self) -> "BatchedUplinkEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def detect_batch(
        self,
        channels,
        received=None,
        noise_var: float | None = None,
        counter: FlopCounter = NULL_COUNTER,
        use_soft: bool = False,
    ) -> BatchDetectionResult:
        """Detect an uplink batch.

        Accepts either an :class:`~repro.runtime.batch.UplinkBatch` or the
        raw ``(channels, received, noise_var)`` triple with shapes
        ``(S, Nr, Nt)`` / ``(S, F, Nr)``.
        """
        if isinstance(channels, UplinkBatch):
            batch = channels
        else:
            batch = UplinkBatch(
                channels=channels, received=received, noise_var=noise_var
            )
        self._check_batch(batch)
        if use_soft and not self.supports_soft:
            raise LinkSimulationError(
                f"{self.detector.name} does not produce soft output"
            )
        if isinstance(self.backend, ArrayBackend):
            return self._detect_array(batch, counter, use_soft)
        if isinstance(self.backend, SerialBackend):
            return self._detect_serial(batch, counter, use_soft)
        return self._detect_sharded(batch, counter, use_soft)

    def detect(
        self,
        channel: np.ndarray,
        received: np.ndarray,
        noise_var: float,
        counter: FlopCounter = NULL_COUNTER,
    ):
        """Single-subcarrier convenience mirroring ``Detector.detect``,
        but serving ``prepare`` through the coherence cache."""
        if self.cache_contexts:
            context = self._cache.get_or_prepare(
                self.detector, channel, noise_var, counter=counter
            )
        else:
            context = self.detector.prepare(
                channel, noise_var, counter=counter
            )
        return self.detector.detect_prepared(context, received, counter=counter)

    # ------------------------------------------------------------------
    def _check_batch(self, batch: UplinkBatch) -> None:
        system = self.detector.system
        if (
            batch.num_rx_antennas != system.num_rx_antennas
            or batch.num_streams != system.num_streams
        ):
            raise ConfigurationError(
                f"batch is {batch.num_rx_antennas}x{batch.num_streams}, "
                f"detector expects {system.num_rx_antennas}x"
                f"{system.num_streams}"
            )

    def _prepare_contexts(
        self, batch: UplinkBatch, counter: FlopCounter
    ) -> "tuple[list | None, int, int]":
        """Contexts for every subcarrier via the persistent cache.

        Returns ``(contexts, cache_hits, contexts_prepared)``;
        ``contexts`` is ``None`` when caching is disabled, in which case
        detection prepares inline (one un-deduplicated ``prepare`` per
        subcarrier — the naive baseline the benchmark measures against).
        """
        if not self.cache_contexts:
            return None, 0, batch.num_subcarriers
        hits_before, misses_before = self._cache.hits, self._cache.misses
        contexts = [
            self._cache.get_or_prepare(
                self.detector, batch.channels[sc], batch.noise_var,
                counter=counter,
            )
            for sc in range(batch.num_subcarriers)
        ]
        return (
            contexts,
            self._cache.hits - hits_before,
            self._cache.misses - misses_before,
        )

    def _prepare_contexts_block(
        self, batch: UplinkBatch, counter: FlopCounter
    ) -> "tuple[list, int, int]":
        """Block analogue of :meth:`_prepare_contexts`.

        Cache misses for the whole coherence block are prepared in one
        ``prepare_many`` call (the stacked-QR path); with caching
        disabled every subcarrier is prepared, un-deduplicated, in one
        stacked call — the same work the serial baseline does one
        channel at a time.
        """
        if not self.cache_contexts:
            contexts = self.detector.prepare_many(
                batch.channels, batch.noise_var, counter=counter
            )
            return contexts, 0, batch.num_subcarriers
        hits_before, misses_before = self._cache.hits, self._cache.misses
        contexts = self._cache.get_or_prepare_block(
            self.detector, batch.channels, batch.noise_var, counter=counter
        )
        return (
            contexts,
            self._cache.hits - hits_before,
            self._cache.misses - misses_before,
        )

    def _detect_array(
        self, batch: UplinkBatch, counter: FlopCounter, use_soft: bool
    ) -> BatchDetectionResult:
        """Stacked tensor-walk path: the whole block in a few array ops.

        Detectors without a block kernel (or without a soft one when
        ``use_soft``) run the per-subcarrier loop on the backend's
        thread instead — selecting ``backend="array"`` is always safe.
        """
        xp = self.backend.array_module
        detector = self.detector
        contexts, cache_hits, prepared = self._prepare_contexts_block(
            batch, counter
        )
        stacked = detector.has_block_kernel and (
            not use_soft
            or callable(getattr(detector, "detect_soft_block_prepared", None))
        )
        llrs = None
        if not stacked:
            indices, llrs, metadata = _detect_block(
                detector,
                batch.channels,
                batch.received,
                batch.noise_var,
                contexts,
                counter,
                use_soft,
            )
        elif use_soft:
            indices, llrs, metadata = detector.detect_soft_block_prepared(
                contexts,
                batch.received,
                batch.noise_var,
                counter=counter,
                xp=xp,
            )
        else:
            indices, metadata = detector.detect_block_prepared(
                contexts, batch.received, counter=counter, xp=xp
            )
        path_groups = len(
            {getattr(context, "active_paths", 0) for context in contexts}
        )
        return BatchDetectionResult(
            indices=indices,
            llrs=llrs,
            per_subcarrier_metadata=metadata,
            stats={
                "backend": self.backend.name,
                "array_module": xp.name,
                "stacked": stacked,
                "path_groups": path_groups,
                "shards": 1,
                "subcarriers": batch.num_subcarriers,
                "frames": batch.num_frames,
                "cache_hits": cache_hits,
                "contexts_prepared": prepared,
            },
        )

    def _detect_serial(
        self, batch: UplinkBatch, counter: FlopCounter, use_soft: bool
    ) -> BatchDetectionResult:
        contexts, cache_hits, prepared = self._prepare_contexts(
            batch, counter
        )
        indices, llrs, metadata = _detect_block(
            self.detector,
            batch.channels,
            batch.received,
            batch.noise_var,
            contexts,
            counter,
            use_soft,
        )
        return BatchDetectionResult(
            indices=indices,
            llrs=llrs,
            per_subcarrier_metadata=metadata,
            stats={
                "backend": self.backend.name,
                "shards": 1,
                "subcarriers": batch.num_subcarriers,
                "frames": batch.num_frames,
                "cache_hits": cache_hits,
                "contexts_prepared": prepared,
            },
        )

    def _detect_sharded(
        self, batch: UplinkBatch, counter: FlopCounter, use_soft: bool
    ) -> BatchDetectionResult:
        # Contexts are prepared in the parent through the persistent
        # cache (so cross-call coherence amortisation survives the pool)
        # and shipped with each shard; workers only detect.
        contexts, cache_hits, prepared = self._prepare_contexts(
            batch, counter
        )
        shards = batch.shard(self.backend.num_shards_hint)
        count_flops = counter is not NULL_COUNTER
        payloads = []
        start = 0
        for shard in shards:
            stop = start + shard.num_subcarriers
            payloads.append(
                (
                    self.detector,
                    shard.channels,
                    shard.received,
                    shard.noise_var,
                    use_soft,
                    count_flops,
                    contexts[start:stop] if contexts is not None else None,
                )
            )
            start = stop
        results = self.backend.run(_run_shard, payloads)
        indices = np.concatenate([r[0] for r in results], axis=0)
        llrs = (
            np.concatenate([r[1] for r in results], axis=0)
            if use_soft
            else None
        )
        metadata = [m for r in results for m in r[2]]
        for r in results:
            mults, adds, comparisons, nodes = r[3]
            counter.add_real_mults(mults)
            counter.add_real_adds(adds)
            counter.add_comparisons(comparisons)
            counter.add_nodes(nodes)
        return BatchDetectionResult(
            indices=indices,
            llrs=llrs,
            per_subcarrier_metadata=metadata,
            stats={
                "backend": self.backend.name,
                "shards": len(shards),
                "subcarriers": batch.num_subcarriers,
                "frames": batch.num_frames,
                "cache_hits": cache_hits,
                "contexts_prepared": prepared,
            },
        )
