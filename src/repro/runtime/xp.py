"""Runtime-facing home of the array-module abstraction.

The implementation lives in :mod:`repro.utils.xp` so the kernel layers
(:mod:`repro.flexcore`, :mod:`repro.modulation`) can use it without
importing the runtime package; this module re-exports it as the public
name the execution backends and user code import.

Select a module per call (``resolve_array_module("torch")``), per engine
(``BatchedUplinkEngine(detector, backend="array")`` with
``make_backend("array", array_module=...)``), or globally via the
``REPRO_ARRAY_BACKEND`` environment variable.
"""

from repro.utils.xp import (
    ARRAY_BACKEND_ENV,
    ArrayModule,
    CountingArrayModule,
    CupyArrayModule,
    DeviceConstantCache,
    NumpyArrayModule,
    TorchArrayModule,
    TransferStats,
    available_array_modules,
    default_array_module,
    resolve_array_module,
)

__all__ = [
    "ARRAY_BACKEND_ENV",
    "ArrayModule",
    "CountingArrayModule",
    "CupyArrayModule",
    "DeviceConstantCache",
    "NumpyArrayModule",
    "TorchArrayModule",
    "TransferStats",
    "available_array_modules",
    "default_array_module",
    "resolve_array_module",
]
