"""Workload containers for the batched uplink runtime.

The runtime's unit of work is the *uplink batch*: every data subcarrier
of one coherence interval, each carrying the same number of received
vectors (OFDM symbols, a.k.a. frames).  FlexCore's "nearly embarrassingly
parallel" claim (§3.2, §5.2) is exactly that these ``subcarriers x
frames`` detection problems are independent — the batch is the shape the
engine shards, caches and vectorises over.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DimensionError


class RuntimeStats(dict):
    """The runtime's per-batch stats mapping.

    A plain ``dict`` kept as a named type so the stats surface stays an
    explicit part of the API.  Cache movement lives under the
    ``"cache"`` key as a :class:`~repro.runtime.cache.CacheStats`
    snapshot; the flat ``cache_hits`` / ``contexts_prepared`` aliases
    from the pre-snapshot era were deprecated in PR 4/5 and have been
    removed.
    """


@dataclass(frozen=True)
class UplinkBatch:
    """A ``(subcarriers x frames)`` uplink detection workload.

    Attributes
    ----------
    channels:
        ``(S, Nr, Nt)`` complex — one channel matrix per subcarrier,
        static over the batch (the §5 coherence assumption).
    received:
        ``(S, F, Nr)`` complex — ``F`` received vectors per subcarrier.
    noise_var:
        Per-receive-antenna noise variance shared by the batch.
    """

    channels: np.ndarray
    received: np.ndarray
    noise_var: float

    def __post_init__(self) -> None:
        if self.noise_var is None:
            raise DimensionError(
                "UplinkBatch needs a noise_var (did you forget the third "
                "argument to detect_batch?)"
            )
        channels = np.asarray(self.channels)
        received = np.asarray(self.received)
        if channels.ndim != 3:
            raise DimensionError(
                f"batch channels must be (S, Nr, Nt), got {channels.shape}"
            )
        if received.ndim == 2:
            # One frame per subcarrier: promote to (S, 1, Nr).
            received = received[:, None, :]
        if received.ndim != 3:
            raise DimensionError(
                f"batch received must be (S, F, Nr), got {received.shape}"
            )
        if received.shape[0] != channels.shape[0]:
            raise DimensionError(
                f"{received.shape[0]} received blocks for "
                f"{channels.shape[0]} subcarrier channels"
            )
        if received.shape[2] != channels.shape[1]:
            raise DimensionError(
                f"received vectors have {received.shape[2]} antennas, "
                f"channels have {channels.shape[1]}"
            )
        object.__setattr__(self, "channels", channels)
        object.__setattr__(self, "received", received)
        object.__setattr__(self, "noise_var", float(self.noise_var))

    @property
    def num_subcarriers(self) -> int:
        return self.channels.shape[0]

    @property
    def num_frames(self) -> int:
        return self.received.shape[1]

    @property
    def num_rx_antennas(self) -> int:
        return self.channels.shape[1]

    @property
    def num_streams(self) -> int:
        return self.channels.shape[2]

    def shard(self, num_shards: int) -> list["UplinkBatch"]:
        """Split along the subcarrier axis into contiguous sub-batches."""
        num_shards = max(1, min(int(num_shards), self.num_subcarriers))
        bounds = np.array_split(np.arange(self.num_subcarriers), num_shards)
        return [
            UplinkBatch(
                channels=self.channels[idx[0] : idx[-1] + 1],
                received=self.received[idx[0] : idx[-1] + 1],
                noise_var=self.noise_var,
            )
            for idx in bounds
            if idx.size
        ]


@dataclass
class BatchDetectionResult:
    """Stacked detection output for one :class:`UplinkBatch`.

    Attributes
    ----------
    indices:
        ``(S, F, Nt)`` hard symbol-index decisions, original stream order.
    llrs:
        ``(S, F, Nt * bits_per_symbol)`` max-log LLRs when the batch was
        detected softly; ``None`` otherwise.
    per_subcarrier_metadata:
        The scheme-specific metadata dict each subcarrier's
        ``detect_prepared`` produced, in subcarrier order.
    stats:
        Runtime accounting: backend name, shard count, and the batch's
        cache movement under ``stats["cache"]`` — a
        :class:`~repro.runtime.cache.CacheStats` snapshot (a
        ``{cell_id: CacheStats}`` mapping when the workload was sharded
        across a cell farm).
    """

    indices: np.ndarray
    llrs: np.ndarray | None = None
    per_subcarrier_metadata: list = field(default_factory=list)
    stats: dict = field(default_factory=dict)
