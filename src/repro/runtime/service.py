"""The cell-agnostic detection service: one prepare+detect block path.

This is the layer both runtime front-ends sit on:

* :class:`~repro.runtime.engine.BatchedUplinkEngine` is a thin *batch
  adapter* — one detector, one private context cache, synchronous
  ``detect_batch`` calls;
* the streaming :class:`~repro.runtime.scheduler.StreamingScheduler` and
  the multi-cell farm (:mod:`repro.runtime.cells`) flush micro-batches
  from many cells through a single shared service, each cell carrying
  its own :class:`~repro.runtime.cache.ContextCache`.

The service owns exactly one thing: an execution backend (``serial`` /
``process-pool`` / ``array``) and the logic for driving a detector over
an :class:`~repro.runtime.batch.UplinkBatch` on it.  Detector and cache
are *per call*, which is what makes the service cell-agnostic — N cells
with N caches (and even N different detectors) can share one backend,
the way the paper's AP shares its processing elements across all
subcarriers in flight (§5.2).
"""

from __future__ import annotations

import copy
import inspect

import numpy as np

from repro.errors import ConfigurationError, LinkSimulationError
from repro.obs import (
    NULL_TRACER,
    SPAN_DETECT,
    SPAN_DOWNLOAD,
    SPAN_PREPARE,
    SPAN_UPLOAD,
    get_global,
    use_tracer,
)
from repro.runtime.backends import (
    ArrayBackend,
    ExecutionBackend,
    SerialBackend,
    make_backend,
)
from repro.runtime.batch import (
    BatchDetectionResult,
    RuntimeStats,
    UplinkBatch,
)
from repro.runtime.cache import CacheStats, ContextCache
from repro.utils.flops import NULL_COUNTER, FlopCounter


def clamp_context_paths(context, max_paths: "int | None"):
    """Apply a per-call path budget to one prepared context.

    Contexts that carry an ``active_paths`` dial (FlexCore's) are
    shallow-copied with the dial clamped to ``max_paths`` — the cached
    original is never mutated, so the budget is genuinely per call.
    Budget-less contexts (linear detectors and friends) pass through
    untouched: the budget dial simply does not apply to them.
    """
    if max_paths is None:
        return context
    active = getattr(context, "active_paths", None)
    if active is None or active <= max_paths:
        return context
    clamped = copy.copy(context)
    clamped.active_paths = int(max_paths)
    return clamped


def _detect_block(
    detector,
    channels: np.ndarray,
    received: np.ndarray,
    noise_var: float,
    contexts: "list | None",
    counter: FlopCounter,
    use_soft: bool,
    max_paths: "int | None" = None,
) -> tuple[np.ndarray, np.ndarray | None, list]:
    """Detect a ``(s, F, Nr)`` block, one context per subcarrier.

    ``contexts`` supplies pre-prepared channel contexts (the cached
    path); ``None`` means prepare inline, once per subcarrier with no
    deduplication — the honest uncached baseline.  ``max_paths`` is the
    optional per-call path budget (see :func:`clamp_context_paths`).
    """
    num_sc, num_frames, _ = received.shape
    num_streams = detector.system.num_streams
    indices = np.empty((num_sc, num_frames, num_streams), dtype=np.int64)
    llrs = None
    if use_soft:
        width = num_streams * detector.system.constellation.bits_per_symbol
        llrs = np.empty((num_sc, num_frames, width))
    metadata = []
    for sc in range(num_sc):
        if contexts is None:
            context = detector.prepare(
                channels[sc], noise_var, counter=counter
            )
        else:
            context = contexts[sc]
        context = clamp_context_paths(context, max_paths)
        if use_soft:
            result = detector.detect_soft_prepared(
                context, received[sc], noise_var, counter=counter
            )
            llrs[sc] = result.llrs
        else:
            result = detector.detect_prepared(
                context, received[sc], counter=counter
            )
        indices[sc] = result.indices
        metadata.append(result.metadata)
    return indices, llrs, metadata


def _run_shard(payload) -> tuple:
    """Process-pool entry point: detect one shard.

    On the cached path the parent has already prepared the shard's
    contexts through its persistent cache and ships them in the payload
    (contexts are plain numpy dataclasses, cheap to pickle), so workers
    only detect.  With caching disabled the worker runs ``prepare`` per
    subcarrier itself.  FLOP totals travel back as plain ints for the
    parent to merge.
    """
    (
        detector,
        channels,
        received,
        noise_var,
        use_soft,
        count_flops,
        contexts,
        max_paths,
    ) = payload
    counter = FlopCounter() if count_flops else NULL_COUNTER
    indices, llrs, metadata = _detect_block(
        detector,
        channels,
        received,
        noise_var,
        contexts,
        counter,
        use_soft,
        max_paths,
    )
    flops = (
        (
            counter.real_mults,
            counter.real_adds,
            counter.comparisons,
            counter.nodes_visited,
        )
        if count_flops
        else (0, 0, 0, 0)
    )
    return indices, llrs, metadata, flops


def supports_soft(detector) -> bool:
    """Whether ``detector`` produces per-bit LLRs."""
    return hasattr(detector, "detect_soft_prepared")


_KERNEL_RESIDENCY: "dict[object, bool]" = {}


def _kernel_accepts_residency(kernel) -> bool:
    """Whether a block kernel takes the ``store``/``max_paths`` kwargs.

    The in-repo FlexCore kernels do; third-party detectors implementing
    the pre-residency ``(contexts, received, counter=, xp=)`` signature
    keep working — the service falls back to clamping their contexts up
    front and building stacks per call.  Probed once per kernel function
    (not per call).
    """
    key = getattr(kernel, "__func__", kernel)
    cached = _KERNEL_RESIDENCY.get(key)
    if cached is None:
        parameters = inspect.signature(kernel).parameters
        cached = "store" in parameters and "max_paths" in parameters
        _KERNEL_RESIDENCY[key] = cached
    return cached


class DetectionService:
    """Drives any detector over uplink batches on one execution backend.

    Parameters
    ----------
    backend:
        ``"serial"`` (default), ``"process-pool"``, ``"array"`` (stacked
        tensor walk), or any pre-built
        :class:`~repro.runtime.backends.ExecutionBackend`.
    obs:
        An :class:`~repro.obs.Observability` hub for span tracing and
        metrics; ``None`` (the default) falls back to the process-global
        hub (installed by the runner's ``--trace``), and with no hub at
        all every instrumentation point is a shared no-op.

    Notes
    -----
    The service holds no detector and no cache — both arrive with each
    :meth:`detect` call, so one service (one backend, one process pool,
    one array module) safely serves many cells with isolated per-cell
    caches.  Results are bit-identical across backends and identical to
    driving the detector one received vector at a time; see the
    batching contract on
    :meth:`repro.detectors.base.Detector.detect_prepared`.
    """

    def __init__(
        self, backend: "str | ExecutionBackend" = "serial", obs=None
    ):
        self.backend = make_backend(backend)
        if obs is None:
            obs = get_global()
        self.obs = obs
        self._tracer = obs.tracer if obs is not None else NULL_TRACER
        self._metrics = obs.metrics if obs is not None else None

    # ------------------------------------------------------------------
    def close(self) -> None:
        self.backend.close()

    def __enter__(self) -> "DetectionService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def detect(
        self,
        detector,
        batch: UplinkBatch,
        cache: "ContextCache | None" = None,
        counter: FlopCounter = NULL_COUNTER,
        use_soft: bool = False,
        max_paths: "int | None" = None,
    ) -> BatchDetectionResult:
        """Detect one :class:`~repro.runtime.batch.UplinkBatch`.

        ``cache`` is the caller's coherence cache (per engine, per cell);
        ``None`` disables caching, preparing once per subcarrier with no
        deduplication — the naive baseline the runtime benchmark
        measures against.

        ``max_paths`` is the control plane's per-call path budget: every
        context carrying an ``active_paths`` dial is clamped to it for
        this call only (cached contexts stay untouched).  ``None`` — the
        default, and the ungoverned behaviour — runs every context at
        its prepared path count.
        """
        self._check_batch(detector, batch)
        if max_paths is not None and max_paths < 1:
            raise ConfigurationError(
                f"max_paths must be >= 1, got {max_paths}"
            )
        if use_soft and not supports_soft(detector):
            raise LinkSimulationError(
                f"{detector.name} does not produce soft output"
            )
        if isinstance(self.backend, ArrayBackend):
            method = self._detect_array
        elif isinstance(self.backend, SerialBackend):
            method = self._detect_serial
        else:
            method = self._detect_sharded
        if not self._tracer.enabled:
            return method(detector, batch, cache, counter, use_soft, max_paths)
        # Make the tracer ambient so deep kernels (the FlexCore QR /
        # tree-search miss path) can record without being plumbed.
        with use_tracer(self._tracer):
            return method(detector, batch, cache, counter, use_soft, max_paths)

    # ------------------------------------------------------------------
    @staticmethod
    def _check_batch(detector, batch: UplinkBatch) -> None:
        system = detector.system
        if (
            batch.num_rx_antennas != system.num_rx_antennas
            or batch.num_streams != system.num_streams
        ):
            raise ConfigurationError(
                f"batch is {batch.num_rx_antennas}x{batch.num_streams}, "
                f"detector expects {system.num_rx_antennas}x"
                f"{system.num_streams}"
            )

    def _prepare_contexts(
        self,
        detector,
        batch: UplinkBatch,
        cache: "ContextCache | None",
        counter: FlopCounter,
    ) -> "tuple[list | None, CacheStats]":
        """Contexts for every subcarrier via the caller's cache.

        Cache misses for the whole batch are deduplicated and prepared
        in one ``prepare_many`` call
        (:meth:`~repro.runtime.cache.ContextCache.get_or_prepare_block`)
        — every backend's miss path rides the batched cold path, with
        hit/miss bookkeeping identical to per-subcarrier lookups.
        Returns ``(contexts, delta)`` where ``delta`` is the batch-local
        :class:`~repro.runtime.cache.CacheStats` movement; ``contexts``
        is ``None`` when caching is disabled, in which case detection
        prepares inline (one un-deduplicated ``prepare`` per subcarrier
        — the honest naive baseline).
        """
        if cache is None:
            return None, CacheStats(misses=batch.num_subcarriers)
        with self._tracer.span(
            SPAN_PREPARE, subcarriers=batch.num_subcarriers
        ) as span:
            before = cache.stats
            contexts = cache.get_or_prepare_block(
                detector, batch.channels, batch.noise_var, counter=counter
            )
            delta = cache.stats.since(before)
            span.set(cache_hits=delta.hits, cache_misses=delta.misses)
        self._count_prepare(delta)
        return contexts, delta

    def _prepare_contexts_block(
        self,
        detector,
        batch: UplinkBatch,
        cache: "ContextCache | None",
        counter: FlopCounter,
    ) -> "tuple[list, CacheStats]":
        """Block analogue of :meth:`_prepare_contexts`.

        Cache misses for the whole coherence block are prepared in one
        ``prepare_many`` call (the stacked-QR path); with caching
        disabled every subcarrier is prepared, un-deduplicated, in one
        stacked call — the same work the serial baseline does one
        channel at a time.
        """
        if cache is None:
            with self._tracer.span(
                SPAN_PREPARE, subcarriers=batch.num_subcarriers
            ) as span:
                contexts = detector.prepare_many(
                    batch.channels, batch.noise_var, counter=counter
                )
                delta = CacheStats(misses=batch.num_subcarriers)
                span.set(cache_hits=0, cache_misses=delta.misses)
            self._count_prepare(delta)
            return contexts, delta
        with self._tracer.span(
            SPAN_PREPARE, subcarriers=batch.num_subcarriers
        ) as span:
            before = cache.stats
            contexts = cache.get_or_prepare_block(
                detector, batch.channels, batch.noise_var, counter=counter
            )
            delta = cache.stats.since(before)
            span.set(cache_hits=delta.hits, cache_misses=delta.misses)
        self._count_prepare(delta)
        return contexts, delta

    def _count_prepare(self, delta: CacheStats) -> None:
        if self._metrics is not None:
            self._metrics.counter("repro_prepare_cache_hits_total").inc(
                delta.hits
            )
            self._metrics.counter("repro_prepare_cache_misses_total").inc(
                delta.misses
            )

    def _record_transfers(self, delta) -> None:
        """Upload/download instants + byte counters from one
        :class:`~repro.utils.xp.TransferStats` delta."""
        if self.obs is None:
            return
        if delta.uploads:
            self._tracer.instant(
                SPAN_UPLOAD,
                {"uploads": delta.uploads, "bytes": delta.upload_bytes},
            )
            self._metrics.counter("repro_upload_bytes_total").inc(
                delta.upload_bytes
            )
        if delta.downloads:
            self._tracer.instant(
                SPAN_DOWNLOAD,
                {"downloads": delta.downloads, "bytes": delta.download_bytes},
            )
            self._metrics.counter("repro_download_bytes_total").inc(
                delta.download_bytes
            )

    @staticmethod
    def _stats(
        base: dict, delta: CacheStats, max_paths: "int | None" = None
    ) -> RuntimeStats:
        """Assemble per-batch stats around one cache snapshot.

        Cache movement lives under the ``"cache"`` key as a
        :class:`~repro.runtime.cache.CacheStats` snapshot (the flat
        ``cache_hits`` / ``contexts_prepared`` aliases were deprecated
        in PR 4/5 and have been removed).
        """
        base["cache"] = delta
        if max_paths is not None:
            base["path_budget"] = int(max_paths)
        return RuntimeStats(base)

    # ------------------------------------------------------------------
    def _detect_array(
        self,
        detector,
        batch: UplinkBatch,
        cache: "ContextCache | None",
        counter: FlopCounter,
        use_soft: bool,
        max_paths: "int | None" = None,
    ) -> BatchDetectionResult:
        """Stacked tensor-walk path: the whole block in a few array ops.

        Detectors without a block kernel (or without a soft one when
        ``use_soft``) run the per-subcarrier loop on the backend's
        thread instead — selecting ``backend="array"`` is always safe.

        Contexts reach residency-aware kernels *unclamped*: the path
        budget is applied exactly once, as a slice of the (resident)
        stacked tensors inside the kernel — never by copying contexts,
        never twice.  The cached context objects are the residency keys,
        so warm coherence-cache hits find their stacks device-side and
        upload zero context bytes; ``stats["transfers"]`` /
        ``stats["resident"]`` carry the per-batch accounting when the
        module meters transfers / the backend keeps a store.
        """
        xp = self.backend.array_module
        store = getattr(self.backend, "resident_store", None)
        transfers_before = xp.transfer_stats()
        resident_before = store.stats if store is not None else None
        contexts, delta = self._prepare_contexts_block(
            detector, batch, cache, counter
        )
        stacked = detector.has_block_kernel and (
            not use_soft
            or callable(getattr(detector, "detect_soft_block_prepared", None))
        )
        llrs = None
        with self._tracer.span(
            SPAN_DETECT,
            backend=self.backend.name,
            stacked=stacked,
            subcarriers=batch.num_subcarriers,
            frames=batch.num_frames,
            path_budget=max_paths,
        ):
            if not stacked:
                # Per-subcarrier fallback: _detect_block owns the
                # (single) clamp, so cached contexts are never
                # pre-copied here.
                indices, llrs, metadata = _detect_block(
                    detector,
                    batch.channels,
                    batch.received,
                    batch.noise_var,
                    contexts,
                    counter,
                    use_soft,
                    max_paths,
                )
            else:
                kernel = (
                    detector.detect_soft_block_prepared
                    if use_soft
                    else detector.detect_block_prepared
                )
                kwargs = {"counter": counter, "xp": xp}
                if _kernel_accepts_residency(kernel):
                    kwargs["store"] = store
                    kwargs["max_paths"] = max_paths
                elif max_paths is not None:
                    # Legacy kernel signature: clamp shallow copies up
                    # front (the cached originals stay untouched).
                    contexts = [
                        clamp_context_paths(context, max_paths)
                        for context in contexts
                    ]
                if use_soft:
                    indices, llrs, metadata = kernel(
                        contexts, batch.received, batch.noise_var, **kwargs
                    )
                else:
                    indices, metadata = kernel(
                        contexts, batch.received, **kwargs
                    )
        path_groups = len(
            {
                min(
                    getattr(context, "active_paths", 0),
                    max_paths if max_paths is not None else np.inf,
                )
                for context in contexts
            }
        )
        base = {
            "backend": self.backend.name,
            "array_module": xp.name,
            "stacked": stacked,
            "path_groups": path_groups,
            "shards": 1,
            "subcarriers": batch.num_subcarriers,
            "frames": batch.num_frames,
        }
        if transfers_before is not None:
            transfer_delta = xp.transfer_stats().since(transfers_before)
            base["transfers"] = transfer_delta
            self._record_transfers(transfer_delta)
        if resident_before is not None:
            base["resident"] = store.stats.since(resident_before)
        return BatchDetectionResult(
            indices=indices,
            llrs=llrs,
            per_subcarrier_metadata=metadata,
            stats=self._stats(base, delta, max_paths),
        )

    def _detect_serial(
        self,
        detector,
        batch: UplinkBatch,
        cache: "ContextCache | None",
        counter: FlopCounter,
        use_soft: bool,
        max_paths: "int | None" = None,
    ) -> BatchDetectionResult:
        contexts, delta = self._prepare_contexts(
            detector, batch, cache, counter
        )
        with self._tracer.span(
            SPAN_DETECT,
            backend=self.backend.name,
            subcarriers=batch.num_subcarriers,
            frames=batch.num_frames,
            path_budget=max_paths,
        ):
            indices, llrs, metadata = _detect_block(
                detector,
                batch.channels,
                batch.received,
                batch.noise_var,
                contexts,
                counter,
                use_soft,
                max_paths,
            )
        return BatchDetectionResult(
            indices=indices,
            llrs=llrs,
            per_subcarrier_metadata=metadata,
            stats=self._stats(
                {
                    "backend": self.backend.name,
                    "shards": 1,
                    "subcarriers": batch.num_subcarriers,
                    "frames": batch.num_frames,
                },
                delta,
                max_paths,
            ),
        )

    def _detect_sharded(
        self,
        detector,
        batch: UplinkBatch,
        cache: "ContextCache | None",
        counter: FlopCounter,
        use_soft: bool,
        max_paths: "int | None" = None,
    ) -> BatchDetectionResult:
        # Contexts are prepared in the parent through the caller's
        # persistent cache (so cross-call coherence amortisation survives
        # the pool) and shipped with each shard; workers only detect.
        contexts, delta = self._prepare_contexts(
            detector, batch, cache, counter
        )
        shards = batch.shard(self.backend.num_shards_hint)
        count_flops = counter is not NULL_COUNTER
        payloads = []
        start = 0
        for shard in shards:
            stop = start + shard.num_subcarriers
            payloads.append(
                (
                    detector,
                    shard.channels,
                    shard.received,
                    shard.noise_var,
                    use_soft,
                    count_flops,
                    contexts[start:stop] if contexts is not None else None,
                    max_paths,
                )
            )
            start = stop
        with self._tracer.span(
            SPAN_DETECT,
            backend=self.backend.name,
            shards=len(shards),
            subcarriers=batch.num_subcarriers,
            frames=batch.num_frames,
            path_budget=max_paths,
        ):
            results = self.backend.run(_run_shard, payloads)
        indices = np.concatenate([r[0] for r in results], axis=0)
        llrs = (
            np.concatenate([r[1] for r in results], axis=0)
            if use_soft
            else None
        )
        metadata = [m for r in results for m in r[2]]
        for r in results:
            mults, adds, comparisons, nodes = r[3]
            counter.add_real_mults(mults)
            counter.add_real_adds(adds)
            counter.add_comparisons(comparisons)
            counter.add_nodes(nodes)
        return BatchDetectionResult(
            indices=indices,
            llrs=llrs,
            per_subcarrier_metadata=metadata,
            stats=self._stats(
                {
                    "backend": self.backend.name,
                    "shards": len(shards),
                    "subcarriers": batch.num_subcarriers,
                    "frames": batch.num_frames,
                },
                delta,
                max_paths,
            ),
        )
