"""Device residency for the stacked tensor-walk (the §5.2 warm path).

The array backend's stacked kernels build one ``(G, F, P, Nt)`` tensor
stack per equal-path-count group of a coherence block.  Without
residency that stack is re-uploaded from the cached numpy contexts on
*every* ``detect`` call — the classic GPU-uplink bottleneck where
bandwidth, not compute, bounds throughput.  :class:`ResidentContextStore`
keeps the uploaded stacks alive between calls, keyed by the identity of
the prepared context objects, so a warm
:class:`~repro.runtime.cache.ContextCache` hit finds its tensors already
device-side and uploads zero context bytes.

Invalidation rides the coherence cache for free: the cache holds the
only strong references to prepared contexts, so when it evicts an entry
(or the channel key changes and a fresh context is prepared) the old
context object dies, the store's weak references go dead, and the next
lookup under a recycled key rebuilds instead of serving stale tensors.

Path-budget clamps never touch this store — the kernels slice the
resident ``positions`` tensor down to the budget (a view, no copy, no
upload), so an AIMD governor sweeping ``max_paths`` up and down costs no
transfers at all.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ResidencyStats:
    """Point-in-time snapshot of a :class:`ResidentContextStore`.

    ``hits``/``misses``/``evictions``/``invalidations`` are lifetime
    counters (or per-batch deltas via :meth:`since`); ``entries`` is the
    resident group count at snapshot time.  The array path surfaces one
    delta per batch in ``stats["resident"]``.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: Entries dropped because a cached context died (coherence-cache
    #: eviction or channel change) while its key was recycled.
    invalidations: int = 0
    entries: int = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "entries": self.entries,
        }

    def since(self, before: "ResidencyStats") -> "ResidencyStats":
        """Counter deltas relative to an earlier snapshot.

        ``entries`` is occupancy, not a counter, so the newer value is
        kept as-is.
        """
        return ResidencyStats(
            hits=self.hits - before.hits,
            misses=self.misses - before.misses,
            evictions=self.evictions - before.evictions,
            invalidations=self.invalidations - before.invalidations,
            entries=self.entries,
        )


class ResidentContextStore:
    """LRU cache of device-side context stacks, validated by identity.

    Entries are keyed by ``(id(module), ids of the group's contexts)``
    and guarded by one weak reference per context: a hit requires every
    weakref to still resolve to the *same* object the key was built
    from, which makes the store immune to CPython id recycling — a dead
    or replaced context invalidates its entry on the next probe.

    The store never holds strong references to contexts, so it cannot
    extend their lifetime past the coherence cache's; the device
    payloads themselves are owned here and bounded by ``max_groups``.
    """

    def __init__(self, max_groups: int = 256):
        if max_groups < 1:
            raise ConfigurationError("max_groups must be >= 1")
        self.max_groups = int(max_groups)
        self._entries: "OrderedDict[tuple, tuple]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def stats(self) -> ResidencyStats:
        return ResidencyStats(
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            invalidations=self._invalidations,
            entries=len(self._entries),
        )

    # ------------------------------------------------------------------
    def get_or_build(self, contexts, xp, build):
        """The resident payload for ``contexts`` on module ``xp``.

        ``build(contexts, xp)`` runs on a miss and its result (the
        uploaded stack) is kept until evicted or invalidated.  Contexts
        that do not support weak references bypass the store entirely —
        residency degrades to per-call builds rather than failing.
        """
        key = (id(xp), tuple(id(context) for context in contexts))
        entry = self._entries.get(key)
        if entry is not None:
            refs, payload = entry
            if all(
                ref() is context for ref, context in zip(refs, contexts)
            ):
                self._hits += 1
                self._entries.move_to_end(key)
                return payload
            # The key was recycled: at least one original context died
            # (cache eviction / channel change) and a new object landed
            # on the same ids.  Drop the stale tensors and rebuild.
            del self._entries[key]
            self._invalidations += 1
        self._misses += 1
        payload = build(contexts, xp)
        try:
            refs = tuple(weakref.ref(context) for context in contexts)
        except TypeError:
            return payload
        self._sweep()
        self._entries[key] = (refs, payload)
        while len(self._entries) > self.max_groups:
            self._entries.popitem(last=False)
            self._evictions += 1
        return payload

    def _sweep(self) -> None:
        """Drop entries whose contexts died, before LRU eviction kicks in.

        Run on insertion only when the store is at capacity, so steady
        state pays nothing and a full store sheds dead groups instead of
        evicting live ones.
        """
        if len(self._entries) < self.max_groups:
            return
        dead = [
            key
            for key, (refs, _) in self._entries.items()
            if any(ref() is None for ref in refs)
        ]
        for key in dead:
            del self._entries[key]
            self._invalidations += 1

    def clear(self) -> None:
        """Drop every resident group (counters keep accumulating)."""
        self._entries.clear()
