"""Multi-cell sharding: many cells, one execution backend.

The ROADMAP's "AP farm" direction: today's deployments run one engine
per cell; this module lets N cells register against one
:class:`~repro.runtime.scheduler.StreamingScheduler` and share a single
execution backend (serial / process-pool / array) through the common
:class:`~repro.runtime.service.DetectionService`, the way RaPro's
multi-server architecture pools baseband compute across radio heads.
Sharing stops at the compute: every cell keeps its **own**
:class:`~repro.runtime.cache.ContextCache` (channels from different
cells never collide, and one cell's coherence churn cannot evict a
neighbour's contexts) and its **own** :class:`CellStats`.

:class:`StreamingUplinkEngine` closes the loop back to the batch world:
it exposes the exact ``detect_batch`` surface of
:class:`~repro.runtime.engine.BatchedUplinkEngine` but routes every
batch through the streaming scheduler sharded across N cells — which is
what ``--streaming --cells N`` on the experiment runner uses, and what
the equivalence suite pins bit-identical to the batch engine.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

import numpy as np

from repro.detectors.base import Detector
from repro.errors import ConfigurationError, LoadShedError
from repro.runtime.batch import (
    BatchDetectionResult,
    RuntimeStats,
    UplinkBatch,
)
from repro.runtime.cache import CacheStats, ContextCache
from repro.runtime.scheduler import (
    FlushRecord,
    FrameArrival,
    StreamingScheduler,
    merge_scheduler_summaries,
)
from repro.runtime.service import DetectionService, supports_soft
from repro.utils.flops import NULL_COUNTER, FlopCounter
from repro.utils.xp import TransferStats


@dataclass
class CellStats:
    """Per-cell streaming counters, updated on every flush.

    The cell's cache movement lives in the ``cache``
    :class:`~repro.runtime.cache.CacheStats` snapshot (accumulated
    flush deltas); the flat ``contexts_prepared`` / ``cache_hits``
    aliases from the pre-snapshot era were deprecated in PR 4/5 and
    have been removed.
    """

    frames: int = 0
    flushes: int = 0
    frames_on_time: int = 0
    frames_late: int = 0
    #: Frames refused by the control plane's admission control.
    frames_shed: int = 0
    #: The cell's accumulated cache movement (hits/misses/evictions are
    #: summed flush deltas; ``entries`` is the latest occupancy).
    cache: CacheStats = field(default_factory=CacheStats)
    #: Accumulated host↔device transfer movement, present only once the
    #: cell has flushed through a transfer-metering array module (see
    #: :class:`~repro.utils.xp.CountingArrayModule`).
    transfers: "TransferStats | None" = None

    def account(
        self,
        record: FlushRecord,
        cache_delta: CacheStats,
        frames_on_time: "int | None" = None,
        transfers: "TransferStats | None" = None,
    ) -> None:
        self.frames += record.frames
        self.flushes += 1
        if frames_on_time is None:
            frames_on_time = record.frames if record.deadline_met else 0
        self.frames_on_time += frames_on_time
        self.frames_late += record.frames - frames_on_time
        self.cache = CacheStats(
            hits=self.cache.hits + cache_delta.hits,
            misses=self.cache.misses + cache_delta.misses,
            evictions=self.cache.evictions + cache_delta.evictions,
            entries=cache_delta.entries,
        )
        if transfers is not None:
            base = self.transfers or TransferStats()
            self.transfers = base.plus(transfers)

    @property
    def deadline_hit_rate(self) -> float:
        total = self.frames_on_time + self.frames_late
        return self.frames_on_time / total if total else 1.0

    def as_dict(self) -> dict:
        """JSON-friendly snapshot (what ``UplinkStack.stats`` surfaces)."""
        payload = {
            "frames": self.frames,
            "flushes": self.flushes,
            "frames_on_time": self.frames_on_time,
            "frames_late": self.frames_late,
            "frames_shed": self.frames_shed,
            "deadline_hit_rate": self.deadline_hit_rate,
            "cache": self.cache.as_dict(),
        }
        if self.transfers is not None:
            payload["transfers"] = self.transfers.as_dict()
        return payload


class Cell:
    """One cell of the farm: a detector, a private cache, its stats."""

    def __init__(
        self,
        cell_id: str,
        detector: Detector,
        max_cache_entries: int = 1024,
    ):
        if not isinstance(detector, Detector):
            raise ConfigurationError(
                f"cell {cell_id!r} needs a Detector instance, got "
                f"{type(detector).__name__}"
            )
        self.cell_id = str(cell_id)
        self.detector = detector
        self.cache = ContextCache(max_entries=max_cache_entries)
        self.stats = CellStats()

    @property
    def cache_stats(self) -> CacheStats:
        return self.cache.stats

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cell({self.cell_id!r}, {self.detector.name})"


class CellFarm:
    """A registry of cells sharing one :class:`DetectionService`.

    Usage::

        farm = CellFarm(backend="array")
        for i in range(4):
            farm.add_cell(f"cell{i}", FlexCoreDetector(system, num_paths=32))
        async with farm.scheduler(slot_budget_s=budget) as sched:
            await sched.submit(FrameArrival(..., cell="cell2"))
    """

    def __init__(
        self,
        backend: str = "serial",
        service: "DetectionService | None" = None,
        obs=None,
    ):
        if service is None:
            self.service = DetectionService(backend, obs=obs)
            self._owns_service = True
        else:
            self.service = service
            self._owns_service = False
        #: The farm's observability hub: the service's (which already
        #: fell back to the process-global hub when none was given).
        self.obs = self.service.obs
        self.cells: "dict[str, Cell]" = {}

    # ------------------------------------------------------------------
    def add_cell(
        self,
        cell_id: str,
        detector: Detector,
        max_cache_entries: int = 1024,
    ) -> Cell:
        if cell_id in self.cells:
            raise ConfigurationError(f"cell {cell_id!r} already registered")
        cell = Cell(cell_id, detector, max_cache_entries=max_cache_entries)
        self.cells[cell_id] = cell
        return cell

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self):
        return iter(self.cells.values())

    def __getitem__(self, cell_id: str) -> Cell:
        return self.cells[cell_id]

    # ------------------------------------------------------------------
    def scheduler(self, **kwargs) -> StreamingScheduler:
        """A streaming scheduler serving this farm's cells on its service."""
        kwargs.setdefault("obs", self.obs)
        return StreamingScheduler(self.cells, service=self.service, **kwargs)

    def stats(self) -> "dict[str, CellStats]":
        return {cell_id: cell.stats for cell_id, cell in self.cells.items()}

    def cache_stats(self) -> "dict[str, CacheStats]":
        return {
            cell_id: cell.cache.stats
            for cell_id, cell in self.cells.items()
        }

    def clear_caches(self) -> None:
        for cell in self.cells.values():
            cell.cache.clear()

    def close(self) -> None:
        if self._owns_service:
            self.service.close()

    def __enter__(self) -> "CellFarm":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class StreamingUplinkEngine:
    """``detect_batch`` adapter over the streaming multi-cell scheduler.

    Drop-in for :class:`~repro.runtime.engine.BatchedUplinkEngine`
    wherever the synchronous batch API is expected (``simulate_link``,
    the experiment harness): each batch is exploded into per-subcarrier
    :class:`~repro.runtime.scheduler.FrameArrival` events, sharded
    round-robin across ``cells`` cells, streamed through a scheduler on
    the shared backend, and reassembled bit-identically.  Per-cell
    context caches persist across calls, so coherence amortisation
    matches the batch engine.

    ``slot_budget_s`` defaults to ``inf`` — offline replay is paced by
    the caller, not by the air interface, so flushing is target- and
    drain-driven and the deadline telemetry stays quiet.  Pass a finite
    budget to model the real-time contract.
    """

    def __init__(
        self,
        detector: Detector,
        backend: str = "serial",
        cells: int = 1,
        batch_target: "int | None" = None,
        slot_budget_s: float = float("inf"),
        flush_margin_s: float = 0.0,
        max_cache_entries: int = 1024,
        governor=None,
        cell_prefix: str = "cell",
        cell_offset: int = 0,
        obs=None,
    ):
        if cells < 1:
            raise ConfigurationError("cells must be >= 1")
        if cell_offset < 0:
            raise ConfigurationError("cell_offset must be >= 0")
        self.detector = detector
        self.farm = CellFarm(backend, obs=obs)
        for index in range(cells):
            self.farm.add_cell(
                f"{cell_prefix}{cell_offset + index}",
                detector,
                max_cache_entries=max_cache_entries,
            )
        self.num_cells = int(cells)
        self.batch_target = batch_target
        self.slot_budget_s = slot_budget_s
        self.flush_margin_s = float(flush_margin_s)
        #: Optional :class:`~repro.control.governor.ComputeGovernor`
        #: attached to every scheduler this engine spins up; persists
        #: across ``detect_batch`` calls so control state (AIMD budgets,
        #: shed flags) carries over a sweep.
        self.governor = governor
        #: Telemetry of the most recent ``detect_batch`` call (long
        #: sweeps make thousands of calls — only the last is retained;
        #: cumulative accounting lives in the per-cell ``CellStats``).
        self.last_telemetry = None
        #: Cumulative scheduler summary over every ``detect_batch`` of
        #: this engine's lifetime (mergeable counters; see
        #: :func:`~repro.runtime.scheduler.merge_scheduler_summaries`).
        self.scheduler_summary: "dict | None" = None

    # ------------------------------------------------------------------
    @property
    def backend(self):
        return self.farm.service.backend

    @property
    def obs(self):
        """The farm's observability hub (``None`` untraced)."""
        return self.farm.obs

    @property
    def supports_soft(self) -> bool:
        return supports_soft(self.detector)

    @property
    def cache_stats(self) -> "dict[str, CacheStats]":
        return self.farm.cache_stats()

    @property
    def cell_stats(self) -> "dict[str, CellStats]":
        return self.farm.stats()

    def clear_cache(self) -> None:
        self.farm.clear_caches()

    def close(self) -> None:
        self.farm.close()

    def __enter__(self) -> "StreamingUplinkEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def detect_batch(
        self,
        channels,
        received=None,
        noise_var: "float | None" = None,
        counter: FlopCounter = NULL_COUNTER,
        use_soft: bool = False,
    ) -> BatchDetectionResult:
        """Stream one uplink batch through the cell farm and reassemble."""
        if isinstance(channels, UplinkBatch):
            batch = channels
        else:
            batch = UplinkBatch(
                channels=channels, received=received, noise_var=noise_var
            )
        return asyncio.run(self._detect(batch, counter, use_soft))

    async def _detect(
        self, batch: UplinkBatch, counter: FlopCounter, use_soft: bool
    ) -> BatchDetectionResult:
        cache_before = self.farm.cache_stats()
        target = (
            self.batch_target
            if self.batch_target is not None
            else max(1, batch.num_frames)
        )
        cell_ids = sorted(self.farm.cells)
        async with self.farm.scheduler(
            batch_target=target,
            slot_budget_s=self.slot_budget_s,
            flush_margin_s=self.flush_margin_s,
            use_soft=use_soft,
            counter=counter,
            governor=self.governor,
        ) as scheduler:
            futures = []
            for sc in range(batch.num_subcarriers):
                arrival = FrameArrival(
                    channel=batch.channels[sc],
                    received=batch.received[sc],
                    noise_var=batch.noise_var,
                    cell=cell_ids[sc % self.num_cells],
                )
                futures.append(await scheduler.submit(arrival))
            await scheduler.flush()
            # Await every future before raising anything: a mid-loop
            # raise would abandon the rest ("exception was never
            # retrieved") and lose the telemetry of work already done.
            detections = await asyncio.gather(
                *futures, return_exceptions=True
            )
            telemetry = scheduler.telemetry
        # Record the accounting of whatever work completed *before*
        # raising anything — error paths must not lose telemetry.
        self.last_telemetry = telemetry
        self.scheduler_summary = merge_scheduler_summaries(
            self.scheduler_summary, telemetry.as_dict()
        )
        shed = sum(
            1 for d in detections if isinstance(d, LoadShedError)
        )
        for detection in detections:
            if isinstance(detection, BaseException) and not isinstance(
                detection, LoadShedError
            ):
                raise detection
        if shed:
            # detect_batch promises a full (S, F, Nt) result; admission
            # control punched holes in it, so the batch as a whole is
            # refused — with the accounting intact.
            raise LoadShedError(
                f"admission control shed {shed} of {len(futures)} "
                "subcarrier arrivals of this batch; the batch adapter "
                "cannot return a partial block (detach the governor or "
                "raise its floor budget for offline replay)"
            )
        indices = np.stack([d.indices for d in detections])
        llrs = (
            np.stack([d.llrs for d in detections]) if use_soft else None
        )
        cache_delta = {
            cell_id: after.since(cache_before[cell_id])
            for cell_id, after in self.farm.cache_stats().items()
        }
        stats = RuntimeStats(
            {
                "backend": self.backend.name,
                "streaming": True,
                "cells": self.num_cells,
                "subcarriers": batch.num_subcarriers,
                "frames": batch.num_frames,
                "scheduler": telemetry.as_dict(),
                # Per-cell cache snapshot ({cell_id: CacheStats}).
                "cache": cache_delta,
            }
        )
        return BatchDetectionResult(
            indices=indices,
            llrs=llrs,
            per_subcarrier_metadata=[d.metadata for d in detections],
            stats=stats,
        )
