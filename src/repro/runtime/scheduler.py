"""Streaming slot-deadline scheduler for the detection runtime.

FlexCore's throughput argument (§5.2) is framed against the LTE
real-time budget: every MIMO vector of a slot must be detected within
the 500 µs slot duration.  The batch engine assumes somebody already
assembled a full ``(subcarriers x frames)`` block; this module is that
somebody — an asyncio loop that ingests :class:`FrameArrival` events as
the radio produces them, groups them by *coherence key* (channel
content, noise level, cell), and flushes each assembled micro-batch
through the shared :class:`~repro.runtime.service.DetectionService`
either when a **batch target** is met or when the
:mod:`repro.ofdm.lte` **slot deadline** expires — whichever comes
first.  Per-flush latency and deadline-hit telemetry is recorded so an
operator can see how close the deployment runs to the real-time edge.

Two layers, deliberately separated:

* :class:`MicroBatcher` — pure, clock-free flush bookkeeping (group
  assembly, deadlines, target checks).  Being free of asyncio makes the
  deadline arithmetic property-testable: flush decisions can be driven
  with simulated timestamps.
* :class:`StreamingScheduler` — the asyncio driver: an arrival queue,
  a deadline-armed wait, fair-share dispatch across registered cells,
  and per-arrival futures resolving to :class:`FrameDetection`.
"""

from __future__ import annotations

import asyncio
import math
import time
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, LoadShedError
from repro.obs import (
    DEADLINE_MARGIN_EDGES_S,
    NULL_TRACER,
    SPAN_FLUSH,
    Histogram,
    get_global,
)
from repro.ofdm.lte import SLOT_DURATION_S, SYMBOLS_PER_SLOT, slot_deadline
from repro.runtime.batch import UplinkBatch
from repro.runtime.cache import context_key
from repro.runtime.service import DetectionService
from repro.utils.flops import NULL_COUNTER, FlopCounter

DEFAULT_CELL = "cell0"

#: Flush reasons recorded in telemetry.
FLUSH_TARGET = "target"
FLUSH_DEADLINE = "deadline"
FLUSH_DRAIN = "drain"


@dataclass
class FrameArrival:
    """One streamed unit of uplink work: frames for a single subcarrier.

    Attributes
    ----------
    channel:
        ``(Nr, Nt)`` channel matrix the frames were received through.
    received:
        ``(Nr,)`` one received vector, or ``(F, Nr)`` a burst of them
        (e.g. the 7 symbols of one LTE slot arriving together).
    noise_var:
        Per-antenna noise variance.
    cell:
        Which registered cell this arrival belongs to.
    arrival_s:
        Monotonic-clock arrival timestamp; stamped by the scheduler on
        ``submit`` when ``None``.
    """

    channel: np.ndarray
    received: np.ndarray
    noise_var: float
    cell: str = DEFAULT_CELL
    arrival_s: "float | None" = None

    def __post_init__(self) -> None:
        channel = np.asarray(self.channel)
        received = np.asarray(self.received)
        if channel.ndim != 2:
            raise ConfigurationError(
                f"arrival channel must be (Nr, Nt), got {channel.shape}"
            )
        if received.ndim == 1:
            received = received[None, :]
        if received.ndim != 2 or received.shape[1] != channel.shape[0]:
            raise ConfigurationError(
                f"arrival received must be (F, {channel.shape[0]}), got "
                f"{np.asarray(self.received).shape}"
            )
        self.channel = channel
        self.received = received
        self.noise_var = float(self.noise_var)

    @property
    def num_frames(self) -> int:
        return self.received.shape[0]


@dataclass(frozen=True)
class FlushRecord:
    """Telemetry for one dispatched micro-batch (one service call)."""

    cell: str
    reason: str
    subcarriers: int
    frames: int
    first_arrival_s: float
    flushed_s: float
    completed_s: float
    deadline_s: float

    @property
    def latency_s(self) -> float:
        """Oldest-arrival-to-completion latency of the flush."""
        return self.completed_s - self.first_arrival_s

    @property
    def deadline_met(self) -> bool:
        """Whether every group in the flush beat its slot deadline.

        ``deadline_s`` is the *earliest* deadline across the flushed
        groups, so meeting it means every group met its own.
        """
        return self.completed_s <= self.deadline_s


@dataclass
class FrameDetection:
    """What a submitted arrival's future resolves to."""

    indices: np.ndarray
    llrs: "np.ndarray | None"
    metadata: dict
    flush: FlushRecord


@dataclass
class SchedulerTelemetry:
    """Streaming counters: frames, flushes, deadline hits, latencies."""

    frames_submitted: int = 0
    frames_detected: int = 0
    frames_on_time: int = 0
    frames_late: int = 0
    frames_shed: int = 0
    flushes: int = 0
    groups_flushed: int = 0
    flush_reasons: dict = field(default_factory=dict)
    records: list = field(default_factory=list)
    max_records: int = 4096
    records_dropped: int = 0
    latency_sum_s: float = 0.0
    max_latency_s: float = 0.0
    #: Fixed-bucket flush-latency histogram: p50/p95/p99/p999 exact to
    #: bucket resolution, and mergeable across summaries by bucket
    #: addition (see :func:`merge_scheduler_summaries`).
    latency_hist: Histogram = field(default_factory=Histogram)
    #: Host↔device transfer movement (array backend with a metering
    #: module only; zero otherwise — see
    #: :class:`~repro.utils.xp.CountingArrayModule`).
    uploads: int = 0
    upload_bytes: int = 0
    downloads: int = 0
    download_bytes: int = 0

    def record(
        self,
        record: FlushRecord,
        groups: int,
        frames_on_time: "int | None" = None,
        transfers=None,
    ) -> None:
        """Account one flush.

        ``frames_on_time`` is the per-group deadline accounting (a group
        counts as on time when the flush completed before *that group's*
        deadline); when omitted the record's conservative earliest-
        deadline verdict covers every frame.  ``transfers`` is the
        flush's :class:`~repro.utils.xp.TransferStats` delta when the
        backend's array module meters transfers.
        """
        self.flushes += 1
        if transfers is not None:
            self.uploads += transfers.uploads
            self.upload_bytes += transfers.upload_bytes
            self.downloads += transfers.downloads
            self.download_bytes += transfers.download_bytes
        self.groups_flushed += groups
        self.frames_detected += record.frames
        if frames_on_time is None:
            frames_on_time = record.frames if record.deadline_met else 0
        self.frames_on_time += frames_on_time
        self.frames_late += record.frames - frames_on_time
        self.flush_reasons[record.reason] = (
            self.flush_reasons.get(record.reason, 0) + 1
        )
        self.latency_sum_s += record.latency_s
        self.max_latency_s = max(self.max_latency_s, record.latency_s)
        self.latency_hist.observe(record.latency_s)
        if len(self.records) < self.max_records:
            self.records.append(record)
        else:
            self.records_dropped += 1

    @property
    def deadline_hit_rate(self) -> float:
        """Fraction of detected frames whose flush beat its deadline."""
        total = self.frames_on_time + self.frames_late
        return self.frames_on_time / total if total else 1.0

    @property
    def mean_latency_s(self) -> float:
        """Mean flush latency (oldest arrival to completion)."""
        return self.latency_sum_s / self.flushes if self.flushes else 0.0

    @property
    def frames_missing(self) -> int:
        """Submitted frames neither detected nor explicitly shed.

        Non-zero means work vanished — a crashed worker, an abandoned
        future — and the summary's ``deadline_hit_rate`` (a ratio over
        *detected* frames only) is flattering a lane that lost frames.
        """
        return (
            self.frames_submitted - self.frames_detected - self.frames_shed
        )

    def as_dict(self) -> dict:
        return {
            "frames_submitted": self.frames_submitted,
            "frames_detected": self.frames_detected,
            "frames_on_time": self.frames_on_time,
            "frames_late": self.frames_late,
            "frames_shed": self.frames_shed,
            "frames_missing": self.frames_missing,
            "flushes": self.flushes,
            "groups_flushed": self.groups_flushed,
            "flush_reasons": dict(self.flush_reasons),
            "deadline_hit_rate": self.deadline_hit_rate,
            "mean_latency_s": self.mean_latency_s,
            "max_latency_s": self.max_latency_s,
            "latency_sum_s": self.latency_sum_s,
            "latency_percentiles": self.latency_hist.quantiles(),
            "latency_hist": self.latency_hist.to_dict(),
            "records_dropped": self.records_dropped,
            "uploads": self.uploads,
            "upload_bytes": self.upload_bytes,
            "downloads": self.downloads,
            "download_bytes": self.download_bytes,
            "summaries_merged": 1,
        }


def merge_scheduler_summaries(
    accumulated: "dict | None", summary: dict
) -> dict:
    """Fold one :meth:`SchedulerTelemetry.as_dict` summary into a total.

    Long runs (a link sweep, a multi-batch experiment) spin up many
    scheduler instances; this merges their summaries into one — counters
    add, latency maxima max, latency histograms merge by bucket
    addition, and the derived rates (``deadline_hit_rate``,
    ``mean_latency_s``, ``latency_percentiles``) are recomputed from the
    merged counters/buckets, so the result is invariant to fold order.
    Pass ``accumulated=None`` to start.

    A merged dict is itself mergeable (the fold is associative —
    property-tested), and it keeps dead lanes visible: an empty or
    crashed worker's summary still reads ``deadline_hit_rate == 1.0``
    on its own (a ratio over zero detected frames), so the merge also
    carries ``summaries_merged`` — how many leaf summaries went into
    the total, so a fleet roll-up missing a worker is countable — and
    ``frames_missing`` — submitted minus detected minus shed, the
    frames that vanished rather than being served or explicitly
    refused.
    """
    counters = (
        "frames_submitted",
        "frames_detected",
        "frames_on_time",
        "frames_late",
        "frames_shed",
        "flushes",
        "groups_flushed",
        "records_dropped",
        "latency_sum_s",
        "uploads",
        "upload_bytes",
        "downloads",
        "download_bytes",
    )
    if accumulated is None:
        merged = {key: summary.get(key, 0) for key in counters}
        merged["flush_reasons"] = dict(summary.get("flush_reasons", {}))
        merged["max_latency_s"] = summary.get("max_latency_s", 0.0)
        merged["summaries_merged"] = summary.get("summaries_merged", 1)
        hist_payload = summary.get("latency_hist")
        if hist_payload is not None:
            # Round-trip for a defensive copy — the fold must never
            # share mutable bucket lists with the leaf summary.
            merged["latency_hist"] = Histogram.from_dict(
                hist_payload
            ).to_dict()
    else:
        merged = dict(accumulated)
        for key in counters:
            merged[key] = merged.get(key, 0) + summary.get(key, 0)
        reasons = dict(merged.get("flush_reasons", {}))
        for reason, count in summary.get("flush_reasons", {}).items():
            reasons[reason] = reasons.get(reason, 0) + count
        merged["flush_reasons"] = reasons
        merged["max_latency_s"] = max(
            merged.get("max_latency_s", 0.0),
            summary.get("max_latency_s", 0.0),
        )
        merged["summaries_merged"] = merged.get(
            "summaries_merged", 1
        ) + summary.get("summaries_merged", 1)
        base_hist = merged.get("latency_hist")
        incoming_hist = summary.get("latency_hist")
        if incoming_hist is not None:
            if base_hist is not None:
                merged["latency_hist"] = (
                    Histogram.from_dict(base_hist)
                    .merge(Histogram.from_dict(incoming_hist))
                    .to_dict()
                )
            else:
                merged["latency_hist"] = Histogram.from_dict(
                    incoming_hist
                ).to_dict()
    on_time = merged["frames_on_time"]
    late = merged["frames_late"]
    merged["deadline_hit_rate"] = (
        on_time / (on_time + late) if on_time + late else 1.0
    )
    merged["mean_latency_s"] = (
        merged["latency_sum_s"] / merged["flushes"]
        if merged["flushes"]
        else 0.0
    )
    merged["frames_missing"] = (
        merged["frames_submitted"]
        - merged["frames_detected"]
        - merged["frames_shed"]
    )
    if merged.get("latency_hist") is not None:
        merged["latency_percentiles"] = Histogram.from_dict(
            merged["latency_hist"]
        ).quantiles()
    return merged


@dataclass
class _Group:
    """Pending frames sharing one coherence key (channel, noise, cell)."""

    cell: str
    key: bytes
    channel: np.ndarray
    noise_var: float
    first_arrival_s: float
    deadline_s: float
    arrivals: list = field(default_factory=list)
    frames: int = 0
    reason: str = FLUSH_TARGET

    def add(self, arrival: FrameArrival, future) -> None:
        self.arrivals.append((arrival, future))
        self.frames += arrival.num_frames

    def stacked_received(self) -> np.ndarray:
        return np.concatenate([a.received for a, _ in self.arrivals], axis=0)


class MicroBatcher:
    """Clock-free micro-batch assembly with slot-deadline bookkeeping.

    The flush contract (property-tested in
    ``tests/runtime/test_scheduler.py``): a group created at time ``t``
    must be flushed no later than ``slot_deadline(t, slot_budget_s)``
    plus one event-loop tick — either because its frame count reached
    ``batch_target`` earlier, or because the driver's deadline wait
    expired.

    Parameters
    ----------
    batch_target:
        Frames per coherence group that trigger an immediate flush.
        Defaults to :data:`repro.ofdm.lte.SYMBOLS_PER_SLOT` — one LTE
        slot's worth of symbol vectors per subcarrier.
    slot_budget_s:
        Deadline budget measured from a group's first arrival.
        Defaults to the LTE 500 µs slot; ``math.inf`` disables deadline
        flushes (drain-driven operation, e.g. offline batch replay).
    flush_margin_s:
        How much *before* the deadline an under-target group is flushed.
        A flush fired exactly at the deadline necessarily completes
        after it — a guaranteed miss — so real-time deployments set this
        to their expected straggler service time, trading batch width
        for completion headroom.  The deadline-hit accounting always
        measures against the true deadline, never the armed one.
    """

    def __init__(
        self,
        batch_target: int = SYMBOLS_PER_SLOT,
        slot_budget_s: float = SLOT_DURATION_S,
        flush_margin_s: float = 0.0,
    ):
        if batch_target < 1:
            raise ConfigurationError("batch_target must be >= 1")
        if not slot_budget_s > 0.0:
            raise ConfigurationError(
                f"slot budget must be positive, got {slot_budget_s}"
            )
        if flush_margin_s < 0.0:
            raise ConfigurationError("flush_margin_s must be >= 0")
        self.batch_target = int(batch_target)
        self.slot_budget_s = float(slot_budget_s)
        self.flush_margin_s = float(flush_margin_s)
        self._groups: "OrderedDict[tuple, _Group]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._groups)

    @property
    def pending_frames(self) -> int:
        return sum(group.frames for group in self._groups.values())

    # ------------------------------------------------------------------
    def add(
        self, arrival: FrameArrival, future, now: float
    ) -> "_Group | None":
        """Account one arrival; return its group if the target is met."""
        when = arrival.arrival_s if arrival.arrival_s is not None else now
        key = (arrival.cell, context_key(arrival.channel, arrival.noise_var))
        group = self._groups.get(key)
        if group is None:
            group = _Group(
                cell=arrival.cell,
                key=key[1],
                channel=arrival.channel,
                noise_var=arrival.noise_var,
                first_arrival_s=when,
                deadline_s=slot_deadline(when, self.slot_budget_s)
                if math.isfinite(self.slot_budget_s)
                else math.inf,
            )
            self._groups[key] = group
        group.add(arrival, future)
        if group.frames >= self.batch_target:
            del self._groups[key]
            group.reason = FLUSH_TARGET
            return group
        return None

    def next_deadline(self) -> "float | None":
        """Earliest pending *armed* deadline (margin already applied),
        or ``None`` when nothing waits."""
        if not self._groups:
            return None
        return (
            min(group.deadline_s for group in self._groups.values())
            - self.flush_margin_s
        )

    def pop_expired(self, now: float) -> list:
        """Remove and return every group whose armed deadline passed."""
        expired = []
        for key, group in list(self._groups.items()):
            if group.deadline_s - self.flush_margin_s <= now:
                del self._groups[key]
                group.reason = FLUSH_DEADLINE
                expired.append(group)
        return expired

    def drain(self) -> list:
        """Remove and return everything pending (explicit flush/stop)."""
        drained = list(self._groups.values())
        for group in drained:
            group.reason = FLUSH_DRAIN
        self._groups.clear()
        return drained


class StreamingScheduler:
    """Asyncio front-end: arrivals in, deadline-bounded flushes out.

    Parameters
    ----------
    cells:
        The cells this scheduler serves: a single
        :class:`~repro.runtime.cells.Cell`, an iterable of them, or a
        ``{cell_id: Cell}`` mapping.  A bare detector is also accepted
        and wrapped in a default single cell.
    service:
        A shared :class:`~repro.runtime.service.DetectionService`; when
        ``None`` a private one is built from ``backend`` and closed with
        the scheduler.
    batch_target / slot_budget_s:
        Flush policy, see :class:`MicroBatcher`.
    use_soft:
        Detect every flush softly (cells' detectors must support it).
    counter:
        FLOP counter charged by every flush.
    governor:
        Optional control plane, duck-typed to
        :class:`~repro.control.governor.ComputeGovernor`: consulted for
        the per-cell path budget before every flush
        (``path_budget(cell_id)``), for admission on every arrival
        (``admit(cell_id, frames, now)`` — a refusal fails the
        arrival's future with :class:`~repro.errors.LoadShedError`),
        fed every flush (``observe_flush``) and offered a control tick
        (``maybe_tick(now)``) once per service loop.
    clock:
        Monotonic time source; injectable for tests.
    obs:
        An :class:`~repro.obs.Observability` hub: every flush becomes a
        ``flush`` span (cell, reason, coherence key, batch size, path
        budget, latency) and feeds the flush-latency / deadline-margin
        histograms.  ``None`` falls back to the process-global hub;
        with no hub at all instrumentation is a shared no-op.

    Usage::

        async with StreamingScheduler(cells, service=svc) as sched:
            fut = await sched.submit(FrameArrival(h, y, noise_var))
            ...
            await sched.flush()          # force-dispatch stragglers
            detection = await fut
    """

    def __init__(
        self,
        cells,
        service: "DetectionService | None" = None,
        backend: str = "serial",
        batch_target: int = SYMBOLS_PER_SLOT,
        slot_budget_s: float = SLOT_DURATION_S,
        flush_margin_s: float = 0.0,
        use_soft: bool = False,
        counter: FlopCounter = NULL_COUNTER,
        governor=None,
        clock=time.monotonic,
        obs=None,
    ):
        self.cells = self._normalise_cells(cells)
        if obs is None:
            obs = get_global()
        self.obs = obs
        self._tracer = obs.tracer if obs is not None else NULL_TRACER
        self._metrics = obs.metrics if obs is not None else None
        if service is None:
            self.service = DetectionService(backend, obs=obs)
            self._owns_service = True
        else:
            self.service = service
            self._owns_service = False
        self.batcher = MicroBatcher(
            batch_target=batch_target,
            slot_budget_s=slot_budget_s,
            flush_margin_s=flush_margin_s,
        )
        self.use_soft = bool(use_soft)
        self.counter = counter
        self.governor = governor
        if governor is not None:
            # Bind the deadline frame of reference the governor's
            # observations are judged against (operator-preconfigured
            # values are respected; see ComputeGovernor.bind_slot_budget).
            bind = getattr(governor, "bind_slot_budget", None)
            if callable(bind):
                bind(self.batcher.slot_budget_s)
            elif getattr(governor, "slot_budget_s", False) is None:
                governor.slot_budget_s = self.batcher.slot_budget_s
            # Hand the governor a tracer for its tick spans, unless the
            # caller (build_stack, a test) already attached one.
            if obs is not None and (
                getattr(governor, "tracer", NULL_TRACER) is NULL_TRACER
            ):
                governor.tracer = obs.tracer
        self.clock = clock
        self.telemetry = SchedulerTelemetry()
        self._queue: "asyncio.Queue | None" = None
        self._task: "asyncio.Task | None" = None
        self._rr_offset = 0

    @staticmethod
    def _normalise_cells(cells) -> dict:
        from repro.runtime.cells import Cell  # local: avoid import cycle
        from repro.detectors.base import Detector

        if isinstance(cells, Detector):
            cells = [Cell(DEFAULT_CELL, cells)]
        elif isinstance(cells, Cell):
            cells = [cells]
        if isinstance(cells, dict):
            cells = list(cells.values())
        registry = {}
        for cell in cells:
            if cell.cell_id in registry:
                raise ConfigurationError(
                    f"duplicate cell id {cell.cell_id!r}"
                )
            registry[cell.cell_id] = cell
        if not registry:
            raise ConfigurationError(
                "StreamingScheduler needs at least one cell"
            )
        return registry

    # ------------------------------------------------------------------
    async def __aenter__(self) -> "StreamingScheduler":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    async def start(self) -> None:
        if self._task is not None:
            raise ConfigurationError("scheduler already running")
        self._queue = asyncio.Queue()
        self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        """Drain everything pending, then stop the loop."""
        if self._task is None:
            return
        await self._control("stop")
        await self._task
        self._task = None
        self._queue = None
        if self._owns_service:
            self.service.close()

    async def flush(self) -> None:
        """Force-dispatch every pending group and wait for completion."""
        await self._control("flush")

    async def _control(self, kind: str) -> None:
        if self._queue is None:
            raise ConfigurationError(
                "scheduler is not running (use `async with` or start())"
            )
        done = asyncio.get_running_loop().create_future()
        self._queue.put_nowait((kind, done))
        if self._task is None:
            await done
            return
        # Also watch the loop task: if it died (a non-Exception error
        # escaping a flush, say KeyboardInterrupt), surface that instead
        # of awaiting a control acknowledgement that will never come.
        await asyncio.wait(
            {done, self._task}, return_when=asyncio.FIRST_COMPLETED
        )
        if done.done():
            return
        self._task.result()  # re-raises the loop's exception
        raise ConfigurationError(
            "scheduler loop exited before handling the control message"
        )

    # ------------------------------------------------------------------
    async def submit(self, arrival: FrameArrival) -> asyncio.Future:
        """Enqueue one arrival; returns a future of :class:`FrameDetection`."""
        if self._queue is None:
            raise ConfigurationError(
                "scheduler is not running (use `async with` or start())"
            )
        cell = self.cells.get(arrival.cell)
        if cell is None:
            raise ConfigurationError(
                f"unknown cell {arrival.cell!r}; registered: "
                f"{', '.join(sorted(self.cells))}"
            )
        system = cell.detector.system
        if arrival.channel.shape != (
            system.num_rx_antennas,
            system.num_streams,
        ):
            raise ConfigurationError(
                f"cell {arrival.cell!r} expects "
                f"({system.num_rx_antennas}, {system.num_streams}) "
                f"channels, got {arrival.channel.shape}"
            )
        if arrival.arrival_s is None:
            arrival.arrival_s = self.clock()
        future = asyncio.get_running_loop().create_future()
        self.telemetry.frames_submitted += arrival.num_frames
        self._queue.put_nowait(("arrival", (arrival, future)))
        return future

    # ------------------------------------------------------------------
    async def _run(self) -> None:
        clean = False
        try:
            await self._serve()
            clean = True
        finally:
            self._fail_stragglers(clean)

    def _fail_stragglers(self, clean: bool) -> None:
        """Resolve anything still pending when the loop exits.

        On a clean stop the batcher was drained and the queue emptied,
        so this is (nearly) a no-op; if the loop died abnormally — a
        non-Exception error such as KeyboardInterrupt escaping a flush —
        it keeps consumers from awaiting forever.
        """
        error = ConfigurationError("scheduler loop terminated")
        for group in self.batcher.drain():
            for _, future in group.arrivals:
                if not future.done():
                    future.set_exception(error)
        while True:
            try:
                kind, payload = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if kind == "arrival":
                _, future = payload
                if not future.done():
                    future.set_exception(error)
            elif not payload.done():
                if clean:
                    payload.set_result(None)
                else:
                    payload.set_exception(error)

    async def _serve(self) -> None:
        queue = self._queue
        stopping = False
        while not stopping:
            deadline = self.batcher.next_deadline()
            item = None
            if deadline is None or math.isinf(deadline):
                item = await queue.get()
            else:
                timeout = max(0.0, deadline - self.clock())
                try:
                    item = await asyncio.wait_for(queue.get(), timeout)
                except asyncio.TimeoutError:
                    item = None
            # Drain whatever else is immediately available so bursts
            # coalesce into wide flushes instead of S=1 dribbles.
            items = [] if item is None else [item]
            while True:
                try:
                    items.append(queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            ready = []
            controls = []
            for kind, payload in items:
                if kind == "arrival":
                    arrival, future = payload
                    if self.governor is not None and not self.governor.admit(
                        arrival.cell, arrival.num_frames, self.clock()
                    ):
                        self._shed(arrival, future)
                        continue
                    group = self.batcher.add(arrival, future, self.clock())
                    if group is not None:
                        ready.append(group)
                else:
                    controls.append((kind, payload))
                    if kind == "stop":
                        stopping = True
            ready.extend(self.batcher.pop_expired(self.clock()))
            if controls:
                ready.extend(self.batcher.drain())
            self._dispatch(ready)
            if self.governor is not None:
                self.governor.maybe_tick(self.clock())
            for _, done in controls:
                if not done.done():
                    done.set_result(None)

    def _shed(self, arrival: FrameArrival, future) -> None:
        """Refuse one arrival on the governor's admission verdict."""
        self.telemetry.frames_shed += arrival.num_frames
        if self._metrics is not None:
            self._metrics.counter("repro_frames_shed_total").inc(
                arrival.num_frames
            )
        stats = getattr(self.cells[arrival.cell], "stats", None)
        if stats is not None:
            stats.frames_shed += arrival.num_frames
        if not future.done():
            future.set_exception(
                LoadShedError(
                    f"cell {arrival.cell!r} is shedding load: the floor "
                    "path budget cannot meet the slot deadline"
                )
            )

    # ------------------------------------------------------------------
    def _dispatch(self, groups: list) -> None:
        """Flush ready groups, fair-share interleaved across cells.

        Groups are bucketed per cell, cells are served in round-robin
        order starting from a rotating offset (so a chronically busy
        cell cannot push its neighbours' flushes to the back of every
        cycle), and each cell's groups of equal frame count are
        coalesced into one multi-subcarrier service call.
        """
        if not groups:
            return
        by_cell: "OrderedDict[str, list]" = OrderedDict()
        for group in groups:
            by_cell.setdefault(group.cell, []).append(group)
        order = sorted(by_cell)
        offset = self._rr_offset % len(order)
        self._rr_offset += 1
        for cell_id in order[offset:] + order[:offset]:
            self._dispatch_cell(self.cells[cell_id], by_cell[cell_id])

    def _dispatch_cell(self, cell, groups: list) -> None:
        # Coalesce: equal (noise_var, frame-count, reason) groups stack
        # into one (S, F, Nr) batch — one backend call instead of S.
        buckets: "OrderedDict[tuple, list]" = OrderedDict()
        for group in groups:
            buckets.setdefault(
                (group.noise_var, group.frames, group.reason), []
            ).append(group)
        path_budget = (
            self.governor.path_budget(cell.cell_id)
            if self.governor is not None
            else None
        )
        tracer = self._tracer
        for (noise_var, _frames, _reason), bucket in buckets.items():
            batch = UplinkBatch(
                channels=np.stack([g.channel for g in bucket]),
                received=np.stack([g.stacked_received() for g in bucket]),
                noise_var=noise_var,
            )
            if tracer.enabled:
                # Attribute computation (key hex etc.) only when a real
                # tracer records — the disabled path stays attribute-free.
                span_cm = tracer.span(
                    SPAN_FLUSH,
                    cell=cell.cell_id,
                    reason=bucket[0].reason,
                    subcarriers=len(bucket),
                    frames=sum(g.frames for g in bucket),
                    coherence_key=bucket[0].key.hex()[:16],
                    path_budget=path_budget,
                )
            else:
                span_cm = tracer.span(SPAN_FLUSH)
            with span_cm as span:
                flushed_s = self.clock()
                try:
                    result = self.service.detect(
                        cell.detector,
                        batch,
                        cache=cell.cache,
                        counter=self.counter,
                        use_soft=self.use_soft,
                        max_paths=path_budget,
                    )
                except Exception as error:  # resolve futures, keep serving
                    span.set(error=type(error).__name__)
                    for group in bucket:
                        for _, future in group.arrivals:
                            if not future.done():
                                future.set_exception(error)
                    continue
                completed_s = self.clock()
                record = FlushRecord(
                    cell=cell.cell_id,
                    reason=bucket[0].reason,
                    subcarriers=len(bucket),
                    frames=sum(g.frames for g in bucket),
                    first_arrival_s=min(g.first_arrival_s for g in bucket),
                    flushed_s=flushed_s,
                    completed_s=completed_s,
                    deadline_s=min(g.deadline_s for g in bucket),
                )
                frames_on_time = sum(
                    g.frames for g in bucket if completed_s <= g.deadline_s
                )
                span.set(
                    latency_s=record.latency_s,
                    deadline_met=record.deadline_met,
                )
                transfers = result.stats.get("transfers")
                self.telemetry.record(
                    record,
                    groups=len(bucket),
                    frames_on_time=frames_on_time,
                    transfers=transfers,
                )
                self._record_flush_metrics(record, frames_on_time)
                if self.governor is not None:
                    self.governor.observe_flush(
                        cell.cell_id,
                        record,
                        frames_on_time=frames_on_time,
                        channel=bucket[0].channel,
                        noise_var=noise_var,
                    )
                stats = getattr(cell, "stats", None)
                if stats is not None:
                    stats.account(
                        record,
                        result.stats["cache"],
                        frames_on_time,
                        transfers=transfers,
                    )
                for sc, group in enumerate(bucket):
                    offset = 0
                    for arrival, future in group.arrivals:
                        stop = offset + arrival.num_frames
                        if not future.done():
                            future.set_result(
                                FrameDetection(
                                    indices=result.indices[sc, offset:stop],
                                    llrs=(
                                        result.llrs[sc, offset:stop]
                                        if result.llrs is not None
                                        else None
                                    ),
                                    metadata=result.per_subcarrier_metadata[
                                        sc
                                    ],
                                    flush=record,
                                )
                            )
                        offset = stop

    def _record_flush_metrics(self, record: FlushRecord, frames_on_time: int):
        metrics = self._metrics
        if metrics is None:
            return
        metrics.histogram("repro_flush_latency_seconds").observe(
            record.latency_s
        )
        if math.isfinite(record.deadline_s):
            # Signed completion-minus-deadline margin: negative = early.
            metrics.histogram(
                "repro_deadline_margin_seconds", DEADLINE_MARGIN_EDGES_S
            ).observe(record.completed_s - record.deadline_s)
        metrics.counter("repro_flushes_total").inc()
        metrics.counter("repro_frames_detected_total").inc(record.frames)
        metrics.counter("repro_frames_late_total").inc(
            record.frames - frames_on_time
        )
        metrics.gauge("repro_deadline_hit_rate").set(
            self.telemetry.deadline_hit_rate
        )
