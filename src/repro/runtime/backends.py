"""Execution backends: where a batch's subcarrier shards actually run.

The engine splits an uplink batch into contiguous subcarrier shards and
hands (worker, shards) to a backend.  ``serial`` runs them in-process —
the right choice under numpy, whose vectorised kernels already saturate
the memory bus for one shard.  ``process-pool`` forks workers and maps
shards across them, the software analogue of the paper's multi-GPU
"one device per subcarrier range" sharding (§5.2); it pays one detector
pickle per shard, so it wins only when per-shard work dominates —
exactly the regime of large constellations and many paths.
"""

from __future__ import annotations

import abc
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Sequence

from repro.errors import ConfigurationError


class ExecutionBackend(abc.ABC):
    """Maps a picklable worker over shard payloads, preserving order."""

    name: str = "backend"

    @abc.abstractmethod
    def run(self, worker: Callable, payloads: Sequence) -> list:
        """Apply ``worker`` to every payload; results in payload order."""

    @property
    def num_shards_hint(self) -> int:
        """How many shards the engine should cut a batch into."""
        return 1

    def close(self) -> None:
        """Release worker resources (no-op for in-process backends)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """In-process execution; shares the engine's cross-call context cache."""

    name = "serial"

    def run(self, worker: Callable, payloads: Sequence) -> list:
        return [worker(payload) for payload in payloads]


class ProcessPoolBackend(ExecutionBackend):
    """Shards subcarriers across a pool of worker processes.

    Parameters
    ----------
    max_workers:
        Pool size; defaults to ``os.cpu_count()`` capped at 8 (beyond
        that the pickle/IPC overhead of shipping channel blocks dwarfs
        the detection work at link-simulation scales).

    Notes
    -----
    Workers are fresh processes and hold no state: the engine prepares
    contexts in the parent (through its persistent coherence cache) and
    ships them inside each shard payload, so cross-call amortisation is
    identical to the serial backend; workers only run the detection
    walk.
    """

    name = "process-pool"

    def __init__(self, max_workers: int | None = None):
        if max_workers is not None and max_workers <= 0:
            raise ConfigurationError("max_workers must be positive")
        self.max_workers = max_workers or min(os.cpu_count() or 1, 8)
        self._executor: ProcessPoolExecutor | None = None

    @property
    def num_shards_hint(self) -> int:
        return self.max_workers

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._executor

    def run(self, worker: Callable, payloads: Sequence) -> list:
        payloads = list(payloads)
        if len(payloads) <= 1:
            # One shard: the pool round-trip buys nothing.
            return [worker(payload) for payload in payloads]
        return list(self._pool().map(worker, payloads))

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None


_BACKENDS = {
    "serial": SerialBackend,
    "process-pool": ProcessPoolBackend,
    "process": ProcessPoolBackend,
}


def available_backends() -> tuple[str, ...]:
    """Names accepted by :func:`make_backend`."""
    return tuple(sorted(set(_BACKENDS)))


def make_backend(spec, **kwargs) -> ExecutionBackend:
    """Resolve a backend name or pass an instance through."""
    if isinstance(spec, ExecutionBackend):
        return spec
    try:
        cls = _BACKENDS[spec]
    except (KeyError, TypeError):
        raise ConfigurationError(
            f"unknown backend {spec!r}; options: {available_backends()}"
        ) from None
    return cls(**kwargs)
