"""Execution backends: where a batch's subcarrier shards actually run.

The engine splits an uplink batch into contiguous subcarrier shards and
hands (worker, shards) to a backend.  ``serial`` runs them in-process —
one vectorised kernel call per subcarrier.  ``process-pool`` forks
workers and maps shards across them, the software analogue of the
paper's multi-GPU "one device per subcarrier range" sharding (§5.2); it
pays one detector pickle per shard, so it wins only when per-shard work
dominates — exactly the regime of large constellations and many paths.
``array`` dispenses with shards entirely: detectors providing a stacked
kernel walk the whole coherence block as one ``(S, F, P, Nt)`` tensor on
a pluggable array module (numpy default, cupy/torch via
``REPRO_ARRAY_BACKEND`` — see :mod:`repro.runtime.xp`), which is the
paper's actual execution model — every (subcarrier x path) processing
element in flight at once.
"""

from __future__ import annotations

import abc
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Sequence

from repro.errors import ConfigurationError, WorkerCrashError
from repro.utils.xp import ArrayModule, default_array_module, resolve_array_module


class ExecutionBackend(abc.ABC):
    """Maps a picklable worker over shard payloads, preserving order."""

    name: str = "backend"

    @abc.abstractmethod
    def run(self, worker: Callable, payloads: Sequence) -> list:
        """Apply ``worker`` to every payload; results in payload order."""

    @property
    def num_shards_hint(self) -> int:
        """How many shards the engine should cut a batch into."""
        return 1

    def close(self) -> None:
        """Release worker resources (no-op for in-process backends)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """In-process execution; shares the engine's cross-call context cache."""

    name = "serial"

    def run(self, worker: Callable, payloads: Sequence) -> list:
        return [worker(payload) for payload in payloads]


class ProcessPoolBackend(ExecutionBackend):
    """Shards subcarriers across a pool of worker processes.

    Parameters
    ----------
    max_workers:
        Pool size; defaults to ``os.cpu_count()`` capped at 8 (beyond
        that the pickle/IPC overhead of shipping channel blocks dwarfs
        the detection work at link-simulation scales).

    Notes
    -----
    Workers are fresh processes and hold no state: the engine prepares
    contexts in the parent (through its persistent coherence cache) and
    ships them inside each shard payload, so cross-call amortisation is
    identical to the serial backend; workers only run the detection
    walk.
    """

    name = "process-pool"

    def __init__(self, max_workers: int | None = None):
        if max_workers is not None and max_workers <= 0:
            raise ConfigurationError("max_workers must be positive")
        self.max_workers = max_workers or min(os.cpu_count() or 1, 8)
        self._executor: ProcessPoolExecutor | None = None
        self._broken_index: "int | None" = None

    @property
    def num_shards_hint(self) -> int:
        return self.max_workers

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._executor

    def _map(self, worker: Callable, payloads: list) -> list:
        # submit (not Executor.map) so a broken pool identifies which
        # payload's result was lost.
        pool = self._pool()
        futures = [pool.submit(worker, payload) for payload in payloads]
        results = []
        for index, future in enumerate(futures):
            try:
                results.append(future.result())
            except BrokenProcessPool:
                self._broken_index = index
                raise
        return results

    def run(self, worker: Callable, payloads: Sequence) -> list:
        payloads = list(payloads)
        if len(payloads) <= 1:
            # One shard: the pool round-trip buys nothing.
            return [worker(payload) for payload in payloads]
        try:
            return self._map(worker, payloads)
        except BrokenProcessPool:
            # A worker killed mid-task (OOM-killer, SIGKILL, segfault)
            # poisons the whole executor: every later submit would raise
            # too.  Tear it down and retry the batch once on a fresh
            # pool; if that breaks as well the work itself is lethal.
            self.close()
            try:
                return self._map(worker, payloads)
            except BrokenProcessPool as error:
                index = self._broken_index
                self.close()
                raise WorkerCrashError(
                    f"process-pool worker died twice running this batch "
                    f"(first lost result: payload {index} of "
                    f"{len(payloads)}); the pool was rebuilt once and "
                    "broke again, so the payload itself is suspect",
                    payload_index=index,
                ) from error

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None


class ArrayBackend(ExecutionBackend):
    """Stacked tensor-walk execution on a pluggable array module.

    The engine bypasses sharding for this backend: contexts for the whole
    batch are prepared through the cache (cache misses factorised by one
    stacked QR) and detectors with a block kernel
    (:attr:`repro.detectors.base.Detector.has_block_kernel`) walk all
    subcarriers of equal path count as a single ``(S, F, P, Nt)`` tensor.
    Detectors without one fall back to the serial per-subcarrier loop —
    the backend is always safe to select.

    Parameters
    ----------
    array_module:
        An :class:`~repro.runtime.xp.ArrayModule`, a name (``"numpy"``,
        ``"cupy"``, ``"torch"``), or ``None`` to honour the
        ``REPRO_ARRAY_BACKEND`` environment variable (numpy when unset).
    residency:
        Keep stacked context tensors device-resident across calls (a
        :class:`~repro.runtime.residency.ResidentContextStore` shared by
        every cell on this backend).  On by default: warm coherence-cache
        hits then upload zero context bytes.  Turn off to rebuild the
        stacks every call (the pre-residency behaviour; results are
        identical either way).
    max_resident_groups:
        Capacity of the resident store (LRU over context groups).
    """

    name = "array"

    def __init__(
        self,
        array_module: "str | ArrayModule | None" = None,
        residency: bool = True,
        max_resident_groups: int = 256,
    ):
        if array_module is None:
            self.array_module = default_array_module()
        else:
            self.array_module = resolve_array_module(array_module)
        if residency:
            from repro.runtime.residency import ResidentContextStore

            self.resident_store = ResidentContextStore(
                max_groups=max_resident_groups
            )
        else:
            self.resident_store = None

    @property
    def residency(self) -> bool:
        return self.resident_store is not None

    def close(self) -> None:
        if self.resident_store is not None:
            self.resident_store.clear()

    def run(self, worker: Callable, payloads: Sequence) -> list:
        # Satisfies the ExecutionBackend ABC only: the engine dispatches
        # ArrayBackend batches straight to its stacked path (including
        # the in-process loop for detectors without a block kernel) and
        # never calls run().
        return [worker(payload) for payload in payloads]


_BACKENDS = {
    "serial": SerialBackend,
    "process-pool": ProcessPoolBackend,
    "process": ProcessPoolBackend,
    "array": ArrayBackend,
}


def available_backends() -> tuple[str, ...]:
    """Names accepted by :func:`make_backend`."""
    return tuple(sorted(set(_BACKENDS)))


def make_backend(spec, **kwargs) -> ExecutionBackend:
    """Resolve a backend name or pass an instance through."""
    if isinstance(spec, ExecutionBackend):
        return spec
    try:
        cls = _BACKENDS[spec]
    except (KeyError, TypeError):
        raise ConfigurationError(
            f"unknown backend {spec!r}; registered backends: "
            f"{', '.join(available_backends())}"
        ) from None
    return cls(**kwargs)
