"""Square M-QAM constellations with Gray labelling, mapping and slicing."""

from repro.modulation.constellation import QamConstellation
from repro.modulation.mapper import (
    demap_bits,
    hard_demap,
    map_bits,
    random_symbol_indices,
)

__all__ = [
    "QamConstellation",
    "demap_bits",
    "hard_demap",
    "map_bits",
    "random_symbol_indices",
]
