"""Bit <-> symbol-vector mapping for multi-antenna frames.

These helpers shape flat coded bit streams into the ``Nt``-element transmit
vectors ``s`` of the uplink model ``y = Hs + n`` and back.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DimensionError
from repro.modulation.constellation import QamConstellation
from repro.utils.rng import as_rng


def map_bits(
    bits: np.ndarray, constellation: QamConstellation, num_streams: int
) -> np.ndarray:
    """Map a flat bit array onto transmit vectors.

    Returns an array of shape ``(num_vectors, num_streams)`` of complex
    symbols, filling stream 0 of vector 0 first (stream-major within a
    vector, matching how the link simulator serialises user bits).
    """
    bits = np.asarray(bits, dtype=np.uint8)
    bits_per_vector = constellation.bits_per_symbol * num_streams
    if bits.size == 0 or bits.size % bits_per_vector != 0:
        raise DimensionError(
            f"bit count {bits.size} is not a multiple of "
            f"{bits_per_vector} (= {num_streams} streams x "
            f"{constellation.bits_per_symbol} bits)"
        )
    symbols = constellation.modulate(bits)
    return symbols.reshape(-1, num_streams)


def demap_bits(
    indices: np.ndarray, constellation: QamConstellation
) -> np.ndarray:
    """Map detected symbol indices of shape ``(n, Nt)`` back to a bit array."""
    indices = np.asarray(indices)
    return constellation.indices_to_bits(indices.reshape(-1))


def hard_demap(
    symbols: np.ndarray, constellation: QamConstellation
) -> np.ndarray:
    """Slice arbitrary complex estimates to bits (used by linear detectors)."""
    indices = constellation.slice_to_index(np.asarray(symbols).reshape(-1))
    return constellation.indices_to_bits(indices)


def random_symbol_indices(
    num_vectors: int,
    num_streams: int,
    constellation: QamConstellation,
    rng=None,
) -> np.ndarray:
    """Draw uniform random transmit-symbol indices, shape ``(n, Nt)``."""
    generator = as_rng(rng)
    return generator.integers(
        0, constellation.order, size=(num_vectors, num_streams)
    )
