"""Square M-QAM constellations.

The constellation is the alphabet ``Q`` of the paper: each transmit antenna
sends one point of a ``|Q|``-ary square QAM grid (4-, 16-, 64-, 256-QAM).

Geometry conventions
--------------------
* In *grid units* the points sit on the odd-integer lattice
  ``{±1, ±3, …, ±(m−1)}²`` with ``m = sqrt(|Q|)``; the minimum inter-symbol
  distance is 2.
* Points returned to callers are scaled by ``1/sqrt(2(m²−1)/3)`` so the
  average symbol energy ``Es`` is exactly 1, which is what the probability
  model of Eq. (4) assumes.
* Bit labelling is per-axis Gray: the first half of a symbol's bits select
  the in-phase level, the second half the quadrature level, so nearest
  neighbours differ in exactly one bit.

FlexCore's triangle look-up table (``repro.flexcore.ordering``) works in
grid units, which keeps all of its arithmetic on small integers.
"""

from __future__ import annotations

import numpy as np

from repro.utils.bits import bits_to_ints, gray_encode, ints_to_bits
from repro.utils.validation import check_square_qam_order


class QamConstellation:
    """A Gray-labelled square QAM constellation with unit average energy.

    Parameters
    ----------
    order:
        Constellation size ``|Q|``; must be an even power of two (4, 16,
        64, 256, ...).

    Attributes
    ----------
    order: int
        ``|Q|``.
    side: int
        ``m = sqrt(|Q|)`` levels per axis.
    bits_per_symbol: int
        ``log2 |Q|``.
    scale: float
        Multiplicative factor from grid units to unit-energy units.
    points: numpy.ndarray
        Complex array of shape ``(order,)``; ``points[k]`` is the symbol
        whose Gray-labelled index is ``k``.
    """

    def __init__(self, order: int):
        check_square_qam_order(order)
        self.order = int(order)
        self.side = int(round(np.sqrt(order)))
        self.bits_per_symbol = int(round(np.log2(order)))
        self._axis_bits = self.bits_per_symbol // 2
        # Unit-energy normalisation: E[|s|^2] over the odd-integer grid is
        # 2(m^2-1)/3.
        self.scale = float(1.0 / np.sqrt(2.0 * (self.side**2 - 1) / 3.0))
        self._levels_grid = np.arange(-(self.side - 1), self.side, 2, dtype=np.int64)
        # Natural axis position i in [0, m) <-> Gray label g.
        positions = np.arange(self.side)
        self._gray_of_position = np.asarray(gray_encode(positions))
        self._position_of_gray = np.empty(self.side, dtype=np.int64)
        self._position_of_gray[self._gray_of_position] = positions
        self.points = self._build_points()
        # Device copies of the immutable tables above, one upload per
        # array module (see DeviceConstantCache) — the detection kernels'
        # warm path re-uploads nothing.
        self._device_tables = None

    def device_constant(self, xp, host: np.ndarray) -> "np.ndarray":
        """``host`` (one of this constellation's tables) on module ``xp``.

        Uploaded on first use per module, then served from a
        :class:`~repro.utils.xp.DeviceConstantCache`.
        """
        if self._device_tables is None:
            from repro.utils.xp import DeviceConstantCache

            self._device_tables = DeviceConstantCache()
        return self._device_tables.get(xp, host)

    def device_points(self, xp=None) -> "np.ndarray":
        """:attr:`points` on module ``xp`` (memoized; numpy passes through)."""
        from repro.utils.xp import resolve_array_module

        return self.device_constant(resolve_array_module(xp), self.points)

    def _build_points(self) -> np.ndarray:
        indices = np.arange(self.order)
        i_axis, q_axis = self.index_to_grid(indices)
        return (i_axis + 1j * q_axis) * self.scale

    # ------------------------------------------------------------------
    # Index <-> grid-coordinate conversions
    # ------------------------------------------------------------------
    def index_to_grid(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Map symbol indices to odd-integer grid coordinates ``(u, v)``."""
        indices = np.asarray(indices)
        gray_i = indices >> self._axis_bits
        gray_q = indices & (self.side - 1)
        pos_i = self._position_of_gray[gray_i]
        pos_q = self._position_of_gray[gray_q]
        return self._levels_grid[pos_i], self._levels_grid[pos_q]

    def grid_to_index(self, u: np.ndarray, v: np.ndarray, xp=None) -> np.ndarray:
        """Map odd-integer grid coordinates to symbol indices.

        Coordinates outside the constellation map to ``-1`` (FlexCore's
        "deactivated" marker).  ``u`` / ``v`` may have any shape; ``xp``
        selects the array module the lookup runs on (numpy default — see
        :mod:`repro.utils.xp`), so detection kernels can keep the whole
        index computation on their device.
        """
        from repro.utils.xp import resolve_array_module

        xp = resolve_array_module(xp)
        # ensure(): inputs from the detection kernels already live on the
        # module — this is dtype normalisation, not a host→device upload.
        u = xp.ensure(u, dtype=xp.int64)
        v = xp.ensure(v, dtype=xp.int64)
        pos_i = (u + self.side - 1) >> 1
        pos_q = (v + self.side - 1) >> 1
        valid = (
            (xp.abs(u) % 2 == 1)
            & (xp.abs(v) % 2 == 1)
            & (pos_i >= 0)
            & (pos_i < self.side)
            & (pos_q >= 0)
            & (pos_q < self.side)
        )
        pos_i = xp.clip(pos_i, 0, self.side - 1)
        pos_q = xp.clip(pos_q, 0, self.side - 1)
        gray_table = self.device_constant(xp, self._gray_of_position)
        gray_i = gray_table[pos_i]
        gray_q = gray_table[pos_q]
        index = (gray_i << self._axis_bits) | gray_q
        return xp.where(valid, index, -1)

    # ------------------------------------------------------------------
    # Bit mapping
    # ------------------------------------------------------------------
    def bits_to_indices(self, bits: np.ndarray) -> np.ndarray:
        """Group a bit vector into symbol indices (MSB-first per symbol)."""
        return bits_to_ints(bits, self.bits_per_symbol)

    def indices_to_bits(self, indices: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`bits_to_indices`."""
        return ints_to_bits(np.asarray(indices).reshape(-1), self.bits_per_symbol)

    def modulate(self, bits: np.ndarray) -> np.ndarray:
        """Map bits directly to unit-energy complex symbols."""
        return self.points[self.bits_to_indices(bits)]

    # ------------------------------------------------------------------
    # Slicing (nearest-symbol quantisation)
    # ------------------------------------------------------------------
    def slice_to_grid(self, received: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Quantise complex samples to the nearest odd-integer grid point.

        The result is clamped into the constellation, so it always names a
        valid symbol.  Works in unit-energy units (divides by ``scale``).
        """
        received = np.asarray(received) / self.scale
        u = self._quantise_axis(received.real)
        v = self._quantise_axis(received.imag)
        return u, v

    def _quantise_axis(self, values: np.ndarray) -> np.ndarray:
        # Nearest odd integer (2*floor(x/2) + 1), clamped to [-(m-1), m-1].
        nearest = 2 * np.floor(np.asarray(values) / 2.0).astype(np.int64) + 1
        return np.clip(nearest, -(self.side - 1), self.side - 1)

    def slice_to_index(self, received: np.ndarray) -> np.ndarray:
        """Return the index of the nearest constellation point."""
        u, v = self.slice_to_grid(received)
        index = self.grid_to_index(u, v)
        # Clamped grid points are always valid symbols.
        return index

    def slice(self, received: np.ndarray) -> np.ndarray:
        """Return the nearest constellation point itself."""
        return self.points[self.slice_to_index(received)]

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    @property
    def min_distance(self) -> float:
        """Minimum inter-symbol distance in unit-energy units."""
        return 2.0 * self.scale

    def exact_order(self, received: complex) -> np.ndarray:
        """Indices of all points sorted by ascending distance to ``received``.

        Exhaustive (``O(|Q| log |Q|)``); used as the ground truth the
        FlexCore triangle LUT is validated against, and by detectors that
        need exact per-level sorting.
        """
        distances = np.abs(self.points - received)
        return np.argsort(distances, kind="stable")

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"QamConstellation(order={self.order})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, QamConstellation) and other.order == self.order

    def __hash__(self) -> int:
        return hash(("QamConstellation", self.order))
