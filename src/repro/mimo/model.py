"""The narrowband uplink model ``y = H s + n`` and SNR conventions.

SNR convention (used everywhere in this reproduction): the *per-user receive
SNR* at one AP antenna,

    SNR = Es * E[|H[r, u]|^2] / sigma^2,

with unit-energy constellations (``Es = 1``) and unit-variance channel
entries this reduces to ``SNR = 1 / sigma^2``.  The paper schedules users so
their individual SNRs differ by at most 3 dB (§5.1), which this convention
makes explicit; network-level quantities then scale with the number of
users, as in Fig. 10.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DimensionError
from repro.utils.rng import as_rng


def noise_variance_for_snr_db(snr_db: float, symbol_energy: float = 1.0) -> float:
    """Complex noise variance ``sigma^2`` for a per-user receive SNR in dB."""
    return float(symbol_energy * 10.0 ** (-snr_db / 10.0))


def snr_db_for_noise_variance(noise_var: float, symbol_energy: float = 1.0) -> float:
    """Inverse of :func:`noise_variance_for_snr_db`."""
    return float(10.0 * np.log10(symbol_energy / noise_var))


def apply_channel(
    channel: np.ndarray,
    symbols: np.ndarray,
    noise_var: float,
    rng=None,
) -> np.ndarray:
    """Propagate transmit vectors through ``y = H s + n``.

    Parameters
    ----------
    channel:
        ``(Nr, Nt)`` complex channel matrix.
    symbols:
        ``(n, Nt)`` batch of transmit vectors.
    noise_var:
        Total complex noise variance per receive antenna (``E[|n_r|^2]``);
        each real dimension gets half of it.
    rng:
        Seed or generator for the noise.

    Returns
    -------
    ``(n, Nr)`` received vectors.
    """
    channel = np.asarray(channel)
    symbols = np.asarray(symbols)
    if symbols.ndim != 2 or channel.ndim != 2:
        raise DimensionError("apply_channel expects 2-D arrays")
    if symbols.shape[1] != channel.shape[1]:
        raise DimensionError(
            f"symbols have {symbols.shape[1]} streams but channel expects "
            f"{channel.shape[1]}"
        )
    generator = as_rng(rng)
    clean = symbols @ channel.T
    scale = np.sqrt(noise_var / 2.0)
    noise = scale * (
        generator.standard_normal(clean.shape)
        + 1j * generator.standard_normal(clean.shape)
    )
    return clean + noise
