"""QR decompositions and detection orderings.

Three flavours are used across the paper:

* :func:`plain_qr` — unsorted QR with a positive real diagonal, the basic
  transform that turns ML detection into the tree search of §2.
* :func:`sorted_qr` — Wübben et al. sorted QR ([13] in the paper): at each
  Gram-Schmidt step the remaining column with the *smallest* residual norm
  is processed next, which leaves the strongest streams for the last
  columns, i.e. the top of the detection tree.
* :func:`fcsd_sorted_qr` — Barbero & Thompson's FCSD ordering ([4]): the
  ``L`` fully-expanded top tree levels take the *weakest* streams (full
  expansion makes their errors harmless) while the single-child levels get
  the strongest.  FlexCore reuses the same routine with ``num_expanded=0``
  semantics through :func:`sorted_qr`.

All routines also expose ZF / MMSE filter construction for the linear
baselines; real-multiplication accounting for Table 2 uses the ``4 Nt^3``
convention stated there.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DimensionError
from repro.utils.flops import NULL_COUNTER, FlopCounter


@dataclass(frozen=True)
class QrDecomposition:
    """Result of an (optionally sorted) QR factorisation ``H P = Q R``.

    Attributes
    ----------
    q:
        ``(Nr, Nt)`` matrix with orthonormal columns.
    r:
        ``(Nt, Nt)`` upper-triangular with non-negative real diagonal.
    permutation:
        ``permutation[k]`` is the original column index placed at position
        ``k``; detectors must un-permute their symbol estimates with
        :meth:`restore_order`.
    """

    q: np.ndarray
    r: np.ndarray
    permutation: np.ndarray

    def restore_order(self, detected: np.ndarray) -> np.ndarray:
        """Map per-position estimates back to original stream order.

        ``detected`` has positions along its last axis.
        """
        restored = np.empty_like(detected)
        restored[..., self.permutation] = detected
        return restored

    def rotate_received(self, received: np.ndarray) -> np.ndarray:
        """Compute ``y_bar = Q* y`` for a batch of received vectors."""
        return np.asarray(received) @ self.q.conj()


def _fix_diagonal_phase(q: np.ndarray, r: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Rotate so every diagonal entry of R is real and non-negative.

    Works on a single ``(Nr, Nt)`` / ``(Nt, Nt)`` pair or a stacked
    ``(..., Nr, Nt)`` / ``(..., Nt, Nt)`` block; the arithmetic is
    elementwise either way, so stacked results are bit-identical to the
    per-matrix path.
    """
    diag = np.diagonal(r, axis1=-2, axis2=-1).copy()
    magnitude = np.abs(diag)
    safe = np.where(magnitude > 0, diag, 1.0)
    phase = np.where(magnitude > 0, safe / np.abs(safe), 1.0)
    q = q * phase[..., None, :]
    r = r * phase.conj()[..., :, None]
    return q, np.triu(r)


def plain_qr(channel: np.ndarray, counter: FlopCounter = NULL_COUNTER) -> QrDecomposition:
    """Unsorted thin QR of the channel matrix."""
    channel = np.asarray(channel)
    if channel.ndim != 2 or channel.shape[0] < channel.shape[1]:
        raise DimensionError("plain_qr expects a tall (Nr >= Nt) matrix")
    q, r = np.linalg.qr(channel)
    q, r = _fix_diagonal_phase(q, r)
    num_streams = channel.shape[1]
    # Table 2 convention: a QR decomposition of an Nt x Nt complex matrix
    # costs about 4 * Nt^3 real multiplications.
    counter.add_real_mults(4 * num_streams**3)
    return QrDecomposition(
        q=q, r=r, permutation=np.arange(channel.shape[1], dtype=np.int64)
    )


def sorted_qr(
    channel: np.ndarray, counter: FlopCounter = NULL_COUNTER
) -> QrDecomposition:
    """Wübben sorted QR (weakest stream first, strongest at the tree top)."""
    channel = np.asarray(channel)
    if channel.ndim != 2 or channel.shape[0] < channel.shape[1]:
        raise DimensionError("sorted_qr expects a tall (Nr >= Nt) matrix")
    num_rx, num_streams = channel.shape
    work = channel.astype(np.complex128, copy=True)
    q = np.zeros((num_rx, num_streams), dtype=np.complex128)
    r = np.zeros((num_streams, num_streams), dtype=np.complex128)
    permutation = np.arange(num_streams, dtype=np.int64)

    for k in range(num_streams):
        norms = np.sum(np.abs(work[:, k:]) ** 2, axis=0)
        pick = k + int(np.argmin(norms))
        if pick != k:
            work[:, [k, pick]] = work[:, [pick, k]]
            r[:, [k, pick]] = r[:, [pick, k]]
            permutation[[k, pick]] = permutation[[pick, k]]
        r[k, k] = np.sqrt(np.sum(np.abs(work[:, k]) ** 2))
        if r[k, k] > 0:
            q[:, k] = work[:, k] / r[k, k]
        projections = q[:, k].conj() @ work[:, k + 1 :]
        r[k, k + 1 :] = projections
        work[:, k + 1 :] -= np.outer(q[:, k], projections)
    counter.add_real_mults(4 * num_streams**3)
    return QrDecomposition(q=q, r=r.astype(np.complex128), permutation=permutation)


def fcsd_sorted_qr(
    channel: np.ndarray,
    num_expanded: int,
    noise_var: float = 0.0,
    counter: FlopCounter = NULL_COUNTER,
) -> QrDecomposition:
    """Barbero-Thompson FCSD ordering.

    The detection order runs from QR position ``Nt`` (tree top) down to 1.
    For the first ``num_expanded`` detected levels the *least* reliable
    remaining stream is selected (its full expansion absorbs the damage);
    afterwards the *most* reliable remaining stream is selected, V-BLAST
    style.  Reliability is measured by the post-nulling noise amplification
    (pseudo-inverse row norms), optionally MMSE-regularised.
    """
    channel = np.asarray(channel)
    if channel.ndim != 2 or channel.shape[0] < channel.shape[1]:
        raise DimensionError("fcsd_sorted_qr expects a tall (Nr >= Nt) matrix")
    num_streams = channel.shape[1]
    # Position Nt (last QR column) is detected first.
    permutation = _fcsd_ordering(channel, num_expanded, noise_var)
    base = plain_qr(channel[:, permutation])
    counter.add_real_mults(4 * num_streams**3)
    return QrDecomposition(q=base.q, r=base.r, permutation=permutation)


def _check_stacked_channels(channels: np.ndarray, who: str) -> np.ndarray:
    channels = np.asarray(channels)
    if channels.ndim != 3 or channels.shape[1] < channels.shape[2]:
        raise DimensionError(
            f"{who} expects a (B, Nr >= Nt, Nt) channel block, got "
            f"{channels.shape}"
        )
    return channels


def stacked_plain_qr(
    channels: np.ndarray, counter: FlopCounter = NULL_COUNTER
) -> list[QrDecomposition]:
    """Unsorted QR of a whole ``(B, Nr, Nt)`` channel block in one shot.

    ``np.linalg.qr`` runs the same LAPACK factorisation per stacked
    matrix, so each returned decomposition is bit-identical to
    :func:`plain_qr` of the corresponding channel — the batched
    cache-miss path of the runtime can substitute freely.
    """
    channels = _check_stacked_channels(channels, "stacked_plain_qr")
    num_matrices, _, num_streams = channels.shape
    if num_matrices == 0:
        return []
    q, r = np.linalg.qr(channels)
    q, r = _fix_diagonal_phase(q, r)
    counter.add_real_mults(4 * num_streams**3 * num_matrices)
    return [
        QrDecomposition(
            q=q[b],
            r=r[b],
            permutation=np.arange(num_streams, dtype=np.int64),
        )
        for b in range(num_matrices)
    ]


def stacked_sorted_qr(
    channels: np.ndarray, counter: FlopCounter = NULL_COUNTER
) -> list[QrDecomposition]:
    """Wübben sorted QR of a ``(B, Nr, Nt)`` block, vectorised over B.

    The column-pick/Gram-Schmidt recursion runs once per tree level
    instead of once per (channel, level); every elementwise and BLAS
    operation decomposes into the same per-channel computations as
    :func:`sorted_qr`, keeping the outputs bit-identical.
    """
    channels = _check_stacked_channels(channels, "stacked_sorted_qr")
    num_matrices, num_rx, num_streams = channels.shape
    if num_matrices == 0:
        return []
    work = channels.astype(np.complex128, copy=True)
    q = np.zeros((num_matrices, num_rx, num_streams), dtype=np.complex128)
    r = np.zeros((num_matrices, num_streams, num_streams), dtype=np.complex128)
    permutation = np.tile(
        np.arange(num_streams, dtype=np.int64), (num_matrices, 1)
    )
    rows = np.arange(num_matrices)

    for k in range(num_streams):
        norms = np.sum(np.abs(work[:, :, k:]) ** 2, axis=1)
        pick = k + np.argmin(norms, axis=1)
        # Per-matrix column swap k <-> pick (no-op where pick == k).
        column = work[rows, :, k].copy()
        work[rows, :, k] = work[rows, :, pick]
        work[rows, :, pick] = column
        column = r[rows, :, k].copy()
        r[rows, :, k] = r[rows, :, pick]
        r[rows, :, pick] = column
        entry = permutation[rows, k].copy()
        permutation[rows, k] = permutation[rows, pick]
        permutation[rows, pick] = entry

        rkk = np.sqrt(np.sum(np.abs(work[:, :, k]) ** 2, axis=1))
        r[:, k, k] = rkk
        nonzero = rkk > 0
        scale = np.where(nonzero, rkk, 1.0)
        q[:, :, k] = np.where(
            nonzero[:, None], work[:, :, k] / scale[:, None], 0.0
        )
        projections = np.matmul(
            q[:, None, :, k].conj(), work[:, :, k + 1 :]
        )[:, 0, :]
        r[:, k, k + 1 :] = projections
        work[:, :, k + 1 :] -= q[:, :, k][:, :, None] * projections[:, None, :]
    counter.add_real_mults(4 * num_streams**3 * num_matrices)
    return [
        QrDecomposition(q=q[b], r=r[b].copy(), permutation=permutation[b])
        for b in range(num_matrices)
    ]


def stacked_fcsd_sorted_qr(
    channels: np.ndarray,
    num_expanded: int,
    noise_var: float = 0.0,
    counter: FlopCounter = NULL_COUNTER,
) -> list[QrDecomposition]:
    """FCSD-ordered QR of a ``(B, Nr, Nt)`` block.

    The greedy reliability ordering is inherently sequential per channel
    (each step's pinv depends on the previous pick), so it stays a small
    per-channel loop; the heavy factorisation then runs as one stacked
    QR of the permuted block.  Outputs are bit-identical to
    :func:`fcsd_sorted_qr` per channel.
    """
    channels = _check_stacked_channels(channels, "stacked_fcsd_sorted_qr")
    num_matrices, _, num_streams = channels.shape
    if num_matrices == 0:
        return []
    permutations = [
        _fcsd_ordering(channels[b], num_expanded, noise_var)
        for b in range(num_matrices)
    ]
    permuted = np.stack(
        [channels[b][:, permutations[b]] for b in range(num_matrices)]
    )
    # Mirrors fcsd_sorted_qr: the inner plain QR is not charged
    # separately; the 4 Nt^3 convention covers the whole factorisation.
    bases = stacked_plain_qr(permuted)
    counter.add_real_mults(4 * num_streams**3 * num_matrices)
    return [
        QrDecomposition(q=base.q, r=base.r, permutation=perm)
        for base, perm in zip(bases, permutations)
    ]


def _fcsd_ordering(
    channel: np.ndarray, num_expanded: int, noise_var: float
) -> np.ndarray:
    """The Barbero-Thompson detection ordering of one channel."""
    num_streams = channel.shape[1]
    if not 0 <= num_expanded <= num_streams:
        raise DimensionError(
            f"num_expanded must lie in [0, {num_streams}], got {num_expanded}"
        )
    remaining = list(range(num_streams))
    ordered: list[int] = []
    for detect_step in range(num_streams):
        sub = channel[:, remaining]
        gram = sub.conj().T @ sub
        if noise_var > 0.0:
            gram = gram + noise_var * np.eye(len(remaining))
        inverse = np.linalg.pinv(gram)
        amplification = np.real(np.diagonal(inverse))
        if detect_step < num_expanded:
            pick = int(np.argmax(amplification))
        else:
            pick = int(np.argmin(amplification))
        ordered.append(remaining.pop(pick))
    return np.array(ordered[::-1], dtype=np.int64)


def zf_filter(channel: np.ndarray, counter: FlopCounter = NULL_COUNTER) -> np.ndarray:
    """Zero-forcing (pseudo-inverse) receive filter, shape ``(Nt, Nr)``."""
    channel = np.asarray(channel)
    counter.add_real_mults(4 * channel.shape[1] ** 3)
    return np.linalg.pinv(channel)


def mmse_filter(
    channel: np.ndarray,
    noise_var: float,
    symbol_energy: float = 1.0,
    counter: FlopCounter = NULL_COUNTER,
) -> np.ndarray:
    """MMSE receive filter ``(H^H H + sigma^2/Es I)^-1 H^H``."""
    channel = np.asarray(channel)
    num_streams = channel.shape[1]
    gram = channel.conj().T @ channel
    regulariser = (noise_var / symbol_energy) * np.eye(num_streams)
    counter.add_real_mults(4 * num_streams**3)
    return np.linalg.solve(gram + regulariser, channel.conj().T)
