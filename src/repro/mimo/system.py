"""The :class:`MimoSystem` descriptor shared by detectors and simulators."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.modulation.constellation import QamConstellation


@dataclass(frozen=True)
class MimoSystem:
    """An ``Nt x Nr`` spatial-multiplexing uplink (Nt users, Nr AP antennas).

    The paper writes systems as ``Nt x Nr`` with ``Nr >= Nt``; each of the
    ``Nt`` single-antenna users sends one stream of ``constellation``
    symbols per subcarrier.

    Attributes
    ----------
    num_streams:
        ``Nt`` — transmit antennas / users.
    num_rx_antennas:
        ``Nr`` — AP antennas.
    constellation:
        The QAM alphabet every user draws from.
    """

    num_streams: int
    num_rx_antennas: int
    constellation: QamConstellation = field(
        default_factory=lambda: QamConstellation(16)
    )

    def __post_init__(self) -> None:
        if self.num_streams <= 0 or self.num_rx_antennas <= 0:
            raise ConfigurationError("antenna counts must be positive")
        if self.num_rx_antennas < self.num_streams:
            raise ConfigurationError(
                f"need Nr >= Nt, got Nt={self.num_streams}, "
                f"Nr={self.num_rx_antennas}"
            )

    @property
    def bits_per_vector(self) -> int:
        """Coded bits carried by one transmit vector ``s``."""
        return self.num_streams * self.constellation.bits_per_symbol

    @property
    def num_leaves(self) -> int:
        """Size of the full sphere-decoder tree, ``|Q|**Nt``."""
        return self.constellation.order**self.num_streams

    def label(self) -> str:
        """Human-readable tag like ``"12x12 64-QAM"``."""
        return (
            f"{self.num_streams}x{self.num_rx_antennas} "
            f"{self.constellation.order}-QAM"
        )
