"""MIMO system descriptors, channel model glue and QR decompositions."""

from repro.mimo.lattice import clll_reduce, orthogonality_defect
from repro.mimo.model import apply_channel, noise_variance_for_snr_db, snr_db_for_noise_variance
from repro.mimo.qr import (
    QrDecomposition,
    fcsd_sorted_qr,
    mmse_filter,
    plain_qr,
    sorted_qr,
    zf_filter,
)
from repro.mimo.system import MimoSystem

__all__ = [
    "MimoSystem",
    "clll_reduce",
    "QrDecomposition",
    "apply_channel",
    "fcsd_sorted_qr",
    "mmse_filter",
    "noise_variance_for_snr_db",
    "orthogonality_defect",
    "plain_qr",
    "snr_db_for_noise_variance",
    "sorted_qr",
    "zf_filter",
]
