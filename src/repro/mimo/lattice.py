"""Complex lattice reduction (CLLL basis reduction).

The paper's related work (§6) cites lattice-reduction techniques [15] as
an alternative near-ML family, dismissed for large MIMO because of their
sequential nature and ``O(Nt^4)`` cost.  This module implements the
complex LLL algorithm of Gan, Ling & Mow so the comparison is
reproducible; the LR-aided detector built on it lives in
:mod:`repro.detectors.lattice`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, DimensionError


def clll_reduce(
    basis: np.ndarray, delta: float = 0.75, max_iterations: int = 10_000
) -> tuple[np.ndarray, np.ndarray]:
    """Complex LLL reduction: returns ``(reduced_basis, unimodular_T)``.

    ``reduced_basis = basis @ T`` with ``T`` unimodular over the Gaussian
    integers (``|det T| = 1``), and the reduced basis satisfies the
    complex Lovász condition with parameter ``delta``.
    """
    if not 0.25 < delta <= 1.0:
        raise ConfigurationError("delta must lie in (0.25, 1]")
    basis = np.asarray(basis, dtype=np.complex128).copy()
    if basis.ndim != 2 or basis.shape[0] < basis.shape[1]:
        raise DimensionError("clll_reduce expects a tall matrix")
    original = basis.copy()
    num_cols = basis.shape[1]
    transform = np.eye(num_cols, dtype=np.complex128)

    def gram_schmidt():
        q, r = np.linalg.qr(basis)
        return q, r

    _, r = gram_schmidt()
    iterations = 0
    k = 1
    while k < num_cols and iterations < max_iterations:
        iterations += 1
        # Size reduction of column k against columns k-1 .. 0.
        for j in range(k - 1, -1, -1):
            mu = r[j, k] / r[j, j]
            rounded = np.round(mu.real) + 1j * np.round(mu.imag)
            if rounded != 0:
                basis[:, k] -= rounded * basis[:, j]
                transform[:, k] -= rounded * transform[:, j]
                _, r = gram_schmidt()
        # Lovász condition.
        lhs = delta * np.abs(r[k - 1, k - 1]) ** 2
        rhs = np.abs(r[k, k]) ** 2 + np.abs(r[k - 1, k]) ** 2
        if lhs > rhs:
            basis[:, [k - 1, k]] = basis[:, [k, k - 1]]
            transform[:, [k - 1, k]] = transform[:, [k, k - 1]]
            _, r = gram_schmidt()
            k = max(k - 1, 1)
        else:
            k += 1
    # Defect guard: complex size reduction (Gaussian-integer rounding)
    # does not strictly guarantee the reduced basis is better conditioned
    # than the input — reducing column k against column j perturbs its
    # lower coefficients, and for a few percent of random bases the final
    # orthogonality defect lands above the original.  Lattice reduction
    # is only useful as an improvement, so fall back to the input basis
    # (identity transform) whenever the reduction worsened it.
    if orthogonality_defect(basis) > orthogonality_defect(original):
        return original, np.eye(num_cols, dtype=np.complex128)
    return basis, transform


def orthogonality_defect(basis: np.ndarray) -> float:
    """Product of column norms over the lattice volume (>= 1; 1 = orthogonal)."""
    basis = np.asarray(basis)
    norms = np.prod(np.linalg.norm(basis, axis=0))
    volume = np.sqrt(
        np.abs(np.linalg.det(basis.conj().T @ basis))
    )
    if volume == 0:
        return float("inf")
    return float(norms / volume)
