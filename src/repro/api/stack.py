"""``build_stack``: one :class:`StackConfig` in, one live stack out.

The assembly half of the config-first API: takes the declarative
:class:`~repro.api.specs.StackConfig` and wires the same objects the
repo's callers used to construct by hand — detector,
:class:`~repro.runtime.service.DetectionService` (via the engines),
per-cell caches, :class:`~repro.runtime.scheduler.StreamingScheduler`
and :class:`~repro.control.governor.ComputeGovernor` — behind the
:class:`UplinkStack` facade.  The equivalence suite pins the facade
bit-identical to the hand-constructed engines across serial /
process-pool / array x batch / streaming x governed / ungoverned, so
nothing is lost by going through the config.
"""

from __future__ import annotations

from repro.api.specs import StackConfig
from repro.control.workload import (
    WorkloadScenario,
    calibrate_slot_cost,
    run_paced,
)
from repro.detectors.base import Detector
from repro.errors import ConfigurationError
from repro.obs import get_global
from repro.runtime.cells import StreamingUplinkEngine
from repro.runtime.engine import BatchedUplinkEngine
from repro.utils.flops import NULL_COUNTER, FlopCounter

#: Sentinel: "use the stack's configured governor" (``None`` must stay
#: expressible — it means "run this scenario ungoverned").
_CONFIGURED = object()


class UplinkStack:
    """A fully-assembled detection stack behind one context manager.

    Built by :func:`build_stack`; not constructed directly.  Exposes the
    whole stack's surface:

    * :meth:`detect_batch` — the synchronous batch API (bit-identical to
      the underlying engine's);
    * :meth:`run_streaming` / :meth:`calibrate_slot_cost` — pace a
      seeded :class:`~repro.control.workload.WorkloadScenario` through
      the streaming farm (streaming stacks only);
    * :meth:`stats` — one JSON-friendly snapshot of the stack's
      accounting (cache movement, per-cell stats, scheduler telemetry,
      governor summary);
    * :meth:`close` — release backend resources; idempotent, and also
      run by the context manager.
    """

    def __init__(
        self,
        config: StackConfig,
        detector: Detector,
        engine,
        governor=None,
        obs=None,
    ):
        self.config = config
        self.detector = detector
        self.engine = engine
        self.governor = governor
        #: The stack's :class:`~repro.obs.Observability` hub (tracer +
        #: metrics registry), or None when tracing is off.
        self.obs = obs
        self._closed = False

    # -- passthrough surface -------------------------------------------
    @property
    def backend(self):
        """The execution backend the stack runs on."""
        return self.engine.backend

    @property
    def streaming(self) -> bool:
        return self.config.farm.streaming

    @property
    def supports_soft(self) -> bool:
        return self.engine.supports_soft

    @property
    def cache_stats(self):
        """Cache snapshot(s): one, or ``{cell_id: CacheStats}``."""
        return self.engine.cache_stats

    @property
    def farm(self):
        """The :class:`~repro.runtime.cells.CellFarm` (streaming only)."""
        self._require_streaming("farm")
        return self.engine.farm

    @property
    def cell_ids(self) -> "tuple[str, ...]":
        return self.config.farm.cell_ids()

    def clear_cache(self) -> None:
        self.engine.clear_cache()

    def detect_batch(
        self,
        channels,
        received=None,
        noise_var: "float | None" = None,
        counter: FlopCounter = NULL_COUNTER,
        use_soft: bool = False,
    ):
        """Detect one uplink batch — the engines' exact contract."""
        return self.engine.detect_batch(
            channels,
            received,
            noise_var,
            counter=counter,
            use_soft=use_soft,
        )

    # -- streaming workloads -------------------------------------------
    def _require_streaming(self, what: str) -> None:
        if not self.config.farm.streaming:
            raise ConfigurationError(
                f"{what} requires a streaming stack; this config is "
                f"batch ({self.config.describe()})"
            )

    def calibrate_slot_cost(
        self,
        scenario: WorkloadScenario,
        cell_channels: dict,
        noise_var: float,
        seed: "int | None" = None,
    ) -> float:
        """Warm wall-clock cost of one full-load slot through the farm."""
        self._require_streaming("calibrate_slot_cost")
        return calibrate_slot_cost(
            self.engine.farm,
            scenario,
            cell_channels,
            self.detector.system,
            noise_var,
            seed=seed,
            batch_target=self.config.scheduler.batch_target,
            flush_margin_s=self.config.scheduler.flush_margin_s,
        )

    def run_streaming(
        self,
        scenario: WorkloadScenario,
        cell_channels: dict,
        noise_var: float,
        slot_interval_s: "float | None" = None,
        overload: float = 1.0,
        governor=_CONFIGURED,
        seed: "int | None" = None,
        keep_detections: bool = False,
    ):
        """Pace one scenario through the streaming farm.

        ``slot_interval_s=None`` calibrates first (one warm full-load
        slot) and paces at ``overload x`` that cost — the shared
        protocol of the farm experiment, the adaptive-farm demo and the
        governor bench.  ``governor`` defaults to the stack's configured
        one; pass ``None`` explicitly to run the same farm ungoverned
        (e.g. for a baseline comparison on warm caches).

        The configured :class:`~repro.api.specs.SchedulerSpec` governs
        the paced schedulers too: ``batch_target`` and
        ``flush_margin_s`` are applied as given, and an explicit
        ``slot_budget_s`` overrides the default deadline budget of a
        paced run (which is the pacing interval itself — the real-time
        contract; the spec's ``None`` keeps that default rather than
        meaning unbounded here).

        Returns ``(ScenarioOutcome, SchedulerTelemetry)``.
        """
        self._require_streaming("run_streaming")
        if slot_interval_s is None:
            slot_interval_s = overload * self.calibrate_slot_cost(
                scenario, cell_channels, noise_var
            )
        spec = self.config.scheduler
        return run_paced(
            self.engine.farm,
            scenario,
            cell_channels,
            self.detector.system,
            noise_var,
            slot_interval_s,
            governor=self.governor if governor is _CONFIGURED else governor,
            seed=seed,
            keep_detections=keep_detections,
            batch_target=spec.batch_target,
            slot_budget_s=spec.slot_budget_s,
            flush_margin_s=spec.flush_margin_s,
        )

    # -- accounting ----------------------------------------------------
    def stats(self) -> dict:
        """One JSON-friendly snapshot of the whole stack's accounting."""
        payload = {
            "config": self.config.to_dict(),
            "backend": self.backend.name,
            "streaming": self.streaming,
        }
        cache = self.engine.cache_stats
        if isinstance(cache, dict):
            payload["cache"] = {
                cell_id: snapshot.as_dict()
                for cell_id, snapshot in cache.items()
            }
        else:
            payload["cache"] = cache.as_dict()
        if self.streaming:
            payload["cells"] = {
                cell_id: stats.as_dict()
                for cell_id, stats in self.engine.cell_stats.items()
            }
            if self.engine.scheduler_summary is not None:
                payload["scheduler"] = dict(self.engine.scheduler_summary)
        if self.governor is not None:
            payload["governor"] = self.governor.as_dict()
        return payload

    # -- observability -------------------------------------------------
    def _require_obs(self, what: str):
        if self.obs is None:
            raise ConfigurationError(
                f"{what} requires tracing; enable it with "
                "TracingSpec(enabled=True) in the config (or the "
                "runner's --trace flag)"
            )
        return self.obs

    def export_trace(self, path) -> None:
        """Write the stack's Chrome trace-event JSON to ``path``."""
        self._require_obs("export_trace").export_trace(path)

    def dump_metrics(self, path) -> None:
        """Write the Prometheus metrics exposition to ``path``."""
        self._require_obs("dump_metrics").dump_metrics(path)

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Release backend resources; safe to call more than once."""
        if not self._closed:
            self.engine.close()
            self._closed = True

    def __enter__(self) -> "UplinkStack":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"UplinkStack({self.config.describe()})"


def build_stack(
    config: StackConfig, detector: "Detector | None" = None
) -> UplinkStack:
    """Assemble a live :class:`UplinkStack` from one :class:`StackConfig`.

    ``detector`` overrides ``config.detector`` with a pre-built instance
    — the hook experiments that sweep many detectors over one runtime
    stack use (the config then describes the runtime; the caller owns
    the detector).  With both absent there is nothing to drive:
    :class:`~repro.errors.ConfigurationError`.
    """
    if not isinstance(config, StackConfig):
        raise ConfigurationError(
            f"build_stack needs a StackConfig, got {type(config).__name__}"
        )
    if detector is None:
        if config.detector is None:
            raise ConfigurationError(
                "this StackConfig has no detector spec; pass a built "
                "detector (build_stack(config, detector=...)) or set "
                "config.detector"
            )
        detector = config.detector.build()
    elif not isinstance(detector, Detector):
        raise ConfigurationError(
            f"detector override must be a Detector, got "
            f"{type(detector).__name__}"
        )
    backend = config.backend.build()
    # A process-global hub (the runner's --trace) takes precedence over
    # the config's own spec; either way a single hub spans the stack.
    obs = get_global()
    if obs is None:
        obs = config.tracing.build()
    if config.farm.streaming:
        governor = (
            config.governor.build(
                constellation=detector.system.constellation
            )
            if config.governor is not None
            else None
        )
        engine = StreamingUplinkEngine(
            detector,
            backend=backend,
            cells=config.farm.cells,
            cell_prefix=config.farm.cell_prefix,
            cell_offset=config.farm.cell_offset,
            batch_target=config.scheduler.batch_target,
            slot_budget_s=config.scheduler.effective_slot_budget_s,
            flush_margin_s=config.scheduler.flush_margin_s,
            max_cache_entries=config.cache.max_entries,
            governor=governor,
            obs=obs,
        )
        if governor is not None and obs is not None:
            governor.tracer = obs.tracer
    else:
        governor = None
        engine = BatchedUplinkEngine(
            detector,
            backend=backend,
            cache_contexts=config.cache.enabled,
            max_cache_entries=config.cache.max_entries,
            obs=obs,
        )
    return UplinkStack(config, detector, engine, governor, obs=obs)
