"""Ready-made :class:`~repro.api.specs.StackConfig` presets.

The deployments the repo keeps rebuilding by hand, named:

* ``"paper-fig9"`` — the Fig. 9 reference stack: 8x8 16-QAM FlexCore at
  64 paths on the batch engine (serial backend), the shape the
  throughput experiments drive.
* ``"ap-farm"`` — ``examples/ap_farm.py`` in config form: four 4x4
  16-QAM cells streaming LTE slot bursts through one shared serial
  backend.
* ``"farm-overload"`` — the PR 4 control-plane scenario: two 8x8
  16-QAM cells on the array backend under an AIMD-governed path budget
  in ``[2, 128]`` — the governed-farm experiment/bench/demo stack.
* ``"array-soft"`` — soft-output FlexCore on the stacked tensor-walk
  (array) backend, for LLR-producing link runs.

Mirrors :func:`repro.runtime.backends.make_backend`'s sorted-names
pattern: :func:`names` is the catalogue every error message cites.
"""

from __future__ import annotations

from repro.api.specs import (
    BackendSpec,
    DetectorSpec,
    FarmSpec,
    GovernorSpec,
    SchedulerSpec,
    StackConfig,
)
from repro.errors import ConfigurationError
from repro.ofdm.lte import SYMBOLS_PER_SLOT


def _paper_fig9() -> StackConfig:
    return StackConfig(
        detector=DetectorSpec(
            "flexcore", 8, 8, 16, params={"num_paths": 64}
        ),
        backend=BackendSpec("serial"),
    )


def _ap_farm() -> StackConfig:
    return StackConfig(
        detector=DetectorSpec(
            "flexcore", 4, 4, 16, params={"num_paths": 16}
        ),
        backend=BackendSpec("serial"),
        farm=FarmSpec(streaming=True, cells=4),
        scheduler=SchedulerSpec(batch_target=SYMBOLS_PER_SLOT),
    )


def _farm_overload() -> StackConfig:
    return StackConfig(
        detector=DetectorSpec(
            "flexcore", 8, 8, 16, params={"num_paths": 128}
        ),
        backend=BackendSpec("array"),
        farm=FarmSpec(streaming=True, cells=2),
        scheduler=SchedulerSpec(batch_target=SYMBOLS_PER_SLOT),
        governor=GovernorSpec(
            policy="aimd",
            paths_min=2,
            paths_max=128,
            peak_frames_hint=8 * SYMBOLS_PER_SLOT,
        ),
    )


def _array_soft() -> StackConfig:
    return StackConfig(
        detector=DetectorSpec(
            "soft-flexcore", 8, 8, 16, params={"num_paths": 32}
        ),
        backend=BackendSpec("array"),
    )


_PRESETS = {
    "paper-fig9": _paper_fig9,
    "ap-farm": _ap_farm,
    "farm-overload": _farm_overload,
    "array-soft": _array_soft,
}


def names() -> "tuple[str, ...]":
    """Preset names accepted by :func:`get` — the error catalogue."""
    return tuple(sorted(_PRESETS))


def get(name: str) -> StackConfig:
    """The named preset as a fresh :class:`StackConfig`."""
    try:
        builder = _PRESETS[name]
    except (KeyError, TypeError):
        raise ConfigurationError(
            f"unknown preset {name!r}; options: {', '.join(names())}"
        ) from None
    return builder()
