"""Typed, frozen, serializable specs for one whole detection stack.

FlexCore's pitch is *flexibility* — one detection core reconfigured per
deployment — but until this module the repository's public surface was a
handful of disjoint constructor protocols (``make_detector`` kwargs,
``BatchedUplinkEngine`` / ``StreamingUplinkEngine`` arguments,
``StreamingScheduler(governor=...)``, runner CLI flags), none of which
could be serialized, diffed, or shipped to a worker process.  RaPro and
Decentralized Baseband Processing (PAPERS.md) both coordinate pooled
baseband compute through explicit, transferable configuration; this
module is that coordination primitive for the repro runtime.

Every spec here is a **frozen dataclass** that validates at construction
(raising :class:`~repro.errors.ConfigurationError`) and round-trips
losslessly through plain JSON-safe dicts::

    config = StackConfig(detector=DetectorSpec("flexcore", 8, params={"num_paths": 64}))
    assert StackConfig.from_dict(config.to_dict()) == config

``from_dict`` is strict: unknown keys, bad registry names, and
cross-field violations (a governor on a non-streaming stack, say) are
rejected with a :class:`~repro.errors.ConfigurationError` — a config
file cannot silently misconfigure a stack.

The composed :class:`StackConfig` is what
:func:`repro.api.build_stack` assembles into a live
:class:`~repro.api.stack.UplinkStack`, what the experiment runner's
``--config`` / ``--preset`` flags load, and what every saved
:class:`~repro.experiments.common.ExperimentResult` embeds so published
JSON is reproducible from its own metadata.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields, replace

from repro.control.policy import (
    POLICY_NAMES,
    AimdPolicy,
    PathBudgetPolicy,
    SnrAwarePolicy,
    StaticPolicy,
)
from repro.detectors.base import Detector
from repro.detectors.registry import available_detectors, make_detector
from repro.errors import ConfigurationError, ReproError
from repro.mimo.system import MimoSystem
from repro.modulation.constellation import QamConstellation
from repro.runtime.backends import (
    ExecutionBackend,
    available_backends,
    make_backend,
)

#: Names the ``array_module`` field of :class:`BackendSpec` accepts —
#: the registry of :mod:`repro.utils.xp` (importability is checked at
#: build time, not spec time, so a config authored on a GPU box still
#: parses on a laptop).
ARRAY_MODULE_NAMES = ("cupy", "numpy", "torch")


def _check_unknown_keys(cls, payload: dict) -> dict:
    """Strict-dict guard shared by every spec's ``from_dict``."""
    if not isinstance(payload, dict):
        raise ConfigurationError(
            f"{cls.__name__} payload must be a mapping, got "
            f"{type(payload).__name__}"
        )
    allowed = {spec_field.name for spec_field in fields(cls)}
    unknown = sorted(set(payload) - allowed)
    if unknown:
        raise ConfigurationError(
            f"{cls.__name__} does not accept {unknown}; known keys: "
            f"{sorted(allowed)}"
        )
    return payload


@dataclass(frozen=True)
class DetectorSpec:
    """Which detector, on which MIMO system, with which knobs.

    Attributes
    ----------
    name:
        A :func:`repro.detectors.registry.make_detector` registry name
        (``"flexcore"``, ``"mmse"``, ``"soft-flexcore"``, ...).
    num_streams / num_rx_antennas:
        The ``Nt x Nr`` uplink; ``num_rx_antennas=None`` means square
        (``Nr = Nt``).
    qam_order:
        Constellation order of every user.
    params:
        Extra detector constructor kwargs (``num_paths``, ``k``,
        ``num_expanded``, ...), JSON-native values only.
    """

    name: str
    num_streams: int
    num_rx_antennas: "int | None" = None
    qam_order: int = 16
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.name not in available_detectors():
            raise ConfigurationError(
                f"unknown detector {self.name!r}; options: "
                f"{available_detectors()}"
            )
        if self.num_streams < 1:
            raise ConfigurationError("num_streams must be >= 1")
        rx = self.num_rx_antennas
        if rx is not None and rx < self.num_streams:
            raise ConfigurationError(
                f"need num_rx_antennas >= num_streams, got {rx} < "
                f"{self.num_streams}"
            )
        try:
            QamConstellation(self.qam_order)
        except ReproError as error:
            raise ConfigurationError(
                f"bad qam_order {self.qam_order!r}: {error}"
            ) from None
        if not isinstance(self.params, dict) or any(
            not isinstance(key, str) for key in self.params
        ):
            raise ConfigurationError(
                "detector params must be a {str: value} mapping"
            )
        object.__setattr__(self, "params", dict(self.params))

    # ------------------------------------------------------------------
    def system(self) -> MimoSystem:
        """The :class:`~repro.mimo.system.MimoSystem` this spec names."""
        return MimoSystem(
            self.num_streams,
            self.num_rx_antennas
            if self.num_rx_antennas is not None
            else self.num_streams,
            QamConstellation(self.qam_order),
        )

    def build(self) -> Detector:
        """Instantiate the detector through the registry."""
        return make_detector(self.name, self.system(), **self.params)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "num_streams": self.num_streams,
            "num_rx_antennas": self.num_rx_antennas,
            "qam_order": self.qam_order,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DetectorSpec":
        return cls(**_check_unknown_keys(cls, payload))


@dataclass(frozen=True)
class BackendSpec:
    """Which execution backend runs the detection work.

    Attributes
    ----------
    name:
        A :func:`repro.runtime.backends.make_backend` registry name
        (``"serial"``, ``"process-pool"``, ``"array"``).
    max_workers:
        Pool size; only meaningful for the process-pool backend.
    array_module:
        Array module for the ``array`` backend (``"numpy"``, ``"cupy"``,
        ``"torch"``); ``None`` honours ``REPRO_ARRAY_BACKEND``.
    residency:
        Whether the ``array`` backend keeps stacked context tensors
        device-resident across calls (see
        :class:`~repro.runtime.residency.ResidentContextStore`).
        ``None`` — the default — means the backend's default, which is
        *on*; ``False`` rebuilds the stacks every call.  Only meaningful
        for the array backend.
    """

    name: str = "serial"
    max_workers: "int | None" = None
    array_module: "str | None" = None
    residency: "bool | None" = None

    def __post_init__(self) -> None:
        if self.name not in available_backends():
            raise ConfigurationError(
                f"unknown backend {self.name!r}; registered backends: "
                f"{', '.join(available_backends())}"
            )
        is_pool = self.name in ("process-pool", "process")
        if self.max_workers is not None:
            if not is_pool:
                raise ConfigurationError(
                    "max_workers only applies to the process-pool "
                    f"backend, not {self.name!r}"
                )
            if self.max_workers < 1:
                raise ConfigurationError("max_workers must be >= 1")
        if self.array_module is not None:
            if self.name != "array":
                raise ConfigurationError(
                    "array_module only applies to the array backend, "
                    f"not {self.name!r}"
                )
            if self.array_module not in ARRAY_MODULE_NAMES:
                raise ConfigurationError(
                    f"unknown array_module {self.array_module!r}; "
                    f"options: {', '.join(ARRAY_MODULE_NAMES)}"
                )
        if self.residency is not None and self.name != "array":
            raise ConfigurationError(
                "residency only applies to the array backend, "
                f"not {self.name!r}"
            )

    # ------------------------------------------------------------------
    def build(self) -> ExecutionBackend:
        """Instantiate the backend through the registry."""
        kwargs = {}
        if self.max_workers is not None:
            kwargs["max_workers"] = self.max_workers
        if self.array_module is not None:
            kwargs["array_module"] = self.array_module
        if self.residency is not None:
            kwargs["residency"] = self.residency
        return make_backend(self.name, **kwargs)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "max_workers": self.max_workers,
            "array_module": self.array_module,
            "residency": self.residency,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "BackendSpec":
        return cls(**_check_unknown_keys(cls, payload))


@dataclass(frozen=True)
class CacheSpec:
    """The coherence context cache every engine/cell carries."""

    enabled: bool = True
    max_entries: int = 1024

    def __post_init__(self) -> None:
        if self.max_entries < 1:
            raise ConfigurationError("cache max_entries must be >= 1")

    def to_dict(self) -> dict:
        return {"enabled": self.enabled, "max_entries": self.max_entries}

    @classmethod
    def from_dict(cls, payload: dict) -> "CacheSpec":
        return cls(**_check_unknown_keys(cls, payload))


@dataclass(frozen=True)
class SchedulerSpec:
    """Flush policy of the streaming slot-deadline scheduler.

    Only meaningful on a streaming stack (``FarmSpec.streaming``);
    :class:`StackConfig` rejects non-default scheduler settings on a
    batch stack.

    Attributes
    ----------
    batch_target:
        Frames per coherence group that trigger an immediate flush;
        ``None`` lets the streaming engine pick (one full batch).
    slot_budget_s:
        Deadline budget from a group's first arrival; ``None`` means
        unbounded (offline replay — JSON has no ``inf``).
    flush_margin_s:
        How much before the deadline an under-target group flushes.
    """

    batch_target: "int | None" = None
    slot_budget_s: "float | None" = None
    flush_margin_s: float = 0.0

    def __post_init__(self) -> None:
        if self.batch_target is not None and self.batch_target < 1:
            raise ConfigurationError("batch_target must be >= 1")
        if self.slot_budget_s is not None and not self.slot_budget_s > 0:
            raise ConfigurationError(
                f"slot budget must be positive, got {self.slot_budget_s}"
            )
        if self.flush_margin_s < 0:
            raise ConfigurationError("flush_margin_s must be >= 0")

    @property
    def effective_slot_budget_s(self) -> float:
        """The runtime value: ``None`` maps to ``inf`` (drain-driven)."""
        if self.slot_budget_s is None:
            return math.inf
        return float(self.slot_budget_s)

    def to_dict(self) -> dict:
        return {
            "batch_target": self.batch_target,
            "slot_budget_s": self.slot_budget_s,
            "flush_margin_s": self.flush_margin_s,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SchedulerSpec":
        return cls(**_check_unknown_keys(cls, payload))


@dataclass(frozen=True)
class FarmSpec:
    """Stack topology: batch adapter, or a streaming farm of N cells.

    Attributes
    ----------
    streaming:
        Route detection through the slot-deadline streaming scheduler
        (:class:`~repro.runtime.cells.StreamingUplinkEngine`) instead of
        the direct batch engine.
    cells:
        Cells sharing the execution backend, each with a private
        context cache; ``cells > 1`` requires ``streaming``.
    cell_prefix:
        Cell ids are ``f"{cell_prefix}{index}"`` — the naming every
        farm driver in the repo shares.
    cell_offset:
        First cell index this farm serves: ids run
        ``prefix{offset} .. prefix{offset + cells - 1}``.  Zero for a
        whole farm; non-zero slices are what
        :meth:`StackConfig.split_cells` hands each coordinated worker
        so global cell ids stay unique across the fleet.
    """

    streaming: bool = False
    cells: int = 1
    cell_prefix: str = "cell"
    cell_offset: int = 0

    def __post_init__(self) -> None:
        if self.cells < 1:
            raise ConfigurationError("cells must be >= 1")
        if not self.cell_prefix:
            raise ConfigurationError("cell_prefix must be non-empty")
        if self.cell_offset < 0:
            raise ConfigurationError("cell_offset must be >= 0")

    def cell_ids(self) -> "tuple[str, ...]":
        return tuple(
            f"{self.cell_prefix}{self.cell_offset + index}"
            for index in range(self.cells)
        )

    def to_dict(self) -> dict:
        return {
            "streaming": self.streaming,
            "cells": self.cells,
            "cell_prefix": self.cell_prefix,
            "cell_offset": self.cell_offset,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FarmSpec":
        return cls(**_check_unknown_keys(cls, payload))


@dataclass(frozen=True)
class GovernorSpec:
    """The adaptive control plane: policy, budget range, escalation.

    One flat spec covers all three policies — fields irrelevant to the
    chosen policy are simply unused, so a config can switch ``policy``
    without re-plumbing:

    * ``static`` — fixed budget of ``paths_max``;
    * ``aimd`` — AIMD on deadline misses between ``paths_min`` and
      ``paths_max`` (``start`` / ``increase`` / ``backoff`` /
      ``headroom`` / ``peak_frames_hint``);
    * ``snr`` — a-FlexCore minimum budget meeting ``target_error_rate``
      under the level-error model (needs the stack's constellation,
      supplied at build time).

    The remaining fields configure the
    :class:`~repro.control.governor.ComputeGovernor` itself.
    """

    policy: str = "aimd"
    paths_min: int = 2
    paths_max: int = 128
    start: "int | None" = None
    increase: int = 1
    backoff: float = 0.5
    headroom: float = 0.5
    peak_frames_hint: "int | None" = None
    target_error_rate: float = 0.05
    control_interval_s: "float | None" = None
    total_path_budget: "int | None" = None
    shed_below: float = 0.5
    resume_above: float = 0.95
    probe_every: int = 8

    def __post_init__(self) -> None:
        if self.policy not in POLICY_NAMES:
            raise ConfigurationError(
                f"unknown governor policy {self.policy!r}; options: "
                f"{', '.join(POLICY_NAMES)}"
            )
        if self.paths_min < 1:
            raise ConfigurationError("paths_min must be >= 1")
        if self.paths_max < self.paths_min:
            raise ConfigurationError(
                f"paths_max ({self.paths_max}) must be >= paths_min "
                f"({self.paths_min})"
            )
        if self.start is not None and not (
            self.paths_min <= self.start <= self.paths_max
        ):
            raise ConfigurationError(
                "start must lie within [paths_min, paths_max]"
            )
        if self.increase < 1:
            raise ConfigurationError("increase must be >= 1")
        if not 0.0 < self.backoff < 1.0:
            raise ConfigurationError("backoff must lie in (0, 1)")
        if not 0.0 < self.headroom <= 1.0:
            raise ConfigurationError("headroom must lie in (0, 1]")
        if self.peak_frames_hint is not None and self.peak_frames_hint < 1:
            raise ConfigurationError("peak_frames_hint must be >= 1")
        if not 0.0 < self.target_error_rate < 1.0:
            raise ConfigurationError(
                "target_error_rate must lie in (0, 1)"
            )
        if self.control_interval_s is not None and self.control_interval_s < 0:
            raise ConfigurationError("control_interval_s must be >= 0")
        if self.total_path_budget is not None and self.total_path_budget < 1:
            raise ConfigurationError("total_path_budget must be >= 1")
        if not 0.0 <= self.shed_below <= 1.0:
            raise ConfigurationError("shed_below must lie in [0, 1]")
        if not 0.0 <= self.resume_above <= 1.0:
            raise ConfigurationError("resume_above must lie in [0, 1]")
        if self.probe_every < 1:
            raise ConfigurationError("probe_every must be >= 1")

    # ------------------------------------------------------------------
    def build_policy(
        self,
        constellation: "QamConstellation | None" = None,
        peak_frames_hint: "int | None" = None,
    ) -> PathBudgetPolicy:
        """The policy prototype this spec describes.

        ``peak_frames_hint`` is a caller-supplied fallback (e.g.
        ``subcarriers x 7`` when the radio capacity is known at run
        time); an explicit spec value always wins.
        """
        if self.policy == "static":
            return StaticPolicy(self.paths_max)
        if self.policy == "aimd":
            hint = (
                self.peak_frames_hint
                if self.peak_frames_hint is not None
                else peak_frames_hint
            )
            return AimdPolicy(
                self.paths_min,
                self.paths_max,
                start=self.start,
                increase=self.increase,
                backoff=self.backoff,
                headroom=self.headroom,
                peak_frames_hint=hint,
            )
        if constellation is None:
            raise ConfigurationError(
                "the snr policy needs the stack's constellation; build "
                "it through build_stack (or pass constellation=...)"
            )
        return SnrAwarePolicy(
            constellation,
            self.paths_min,
            self.paths_max,
            target_error_rate=self.target_error_rate,
        )

    def build(
        self,
        constellation: "QamConstellation | None" = None,
        peak_frames_hint: "int | None" = None,
    ):
        """A fresh :class:`~repro.control.governor.ComputeGovernor`."""
        from repro.control.governor import ComputeGovernor

        return ComputeGovernor(
            self.build_policy(constellation, peak_frames_hint),
            control_interval_s=self.control_interval_s,
            total_path_budget=self.total_path_budget,
            shed_below=self.shed_below,
            resume_above=self.resume_above,
            probe_every=self.probe_every,
        )

    def to_dict(self) -> dict:
        return {
            "policy": self.policy,
            "paths_min": self.paths_min,
            "paths_max": self.paths_max,
            "start": self.start,
            "increase": self.increase,
            "backoff": self.backoff,
            "headroom": self.headroom,
            "peak_frames_hint": self.peak_frames_hint,
            "target_error_rate": self.target_error_rate,
            "control_interval_s": self.control_interval_s,
            "total_path_budget": self.total_path_budget,
            "shed_below": self.shed_below,
            "resume_above": self.resume_above,
            "probe_every": self.probe_every,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "GovernorSpec":
        return cls(**_check_unknown_keys(cls, payload))


@dataclass(frozen=True)
class TracingSpec:
    """Observability switch: span tracing + metrics for the stack.

    Off by default — a disabled spec builds no tracer and the
    instrumented code paths fall through to the shared no-op tracer.
    When enabled, :func:`repro.api.build_stack` attaches one
    :class:`~repro.obs.Observability` hub (tracer + metrics registry)
    to the whole stack, exported via
    :meth:`~repro.api.stack.UplinkStack.export_trace` /
    :meth:`~repro.api.stack.UplinkStack.dump_metrics` or the runner's
    ``--trace`` / ``--metrics-dump`` flags.

    Attributes
    ----------
    enabled:
        Record spans and metrics for this stack.
    max_events:
        Tracer ring-buffer capacity; the oldest spans drop first on a
        long run.
    """

    enabled: bool = False
    max_events: int = 65536

    def __post_init__(self) -> None:
        if self.max_events < 1:
            raise ConfigurationError("max_events must be >= 1")

    def build(self):
        """An :class:`~repro.obs.Observability` hub, or None if off."""
        if not self.enabled:
            return None
        from repro.obs import Observability

        return Observability(max_events=self.max_events)

    def to_dict(self) -> dict:
        return {"enabled": self.enabled, "max_events": self.max_events}

    @classmethod
    def from_dict(cls, payload: dict) -> "TracingSpec":
        return cls(**_check_unknown_keys(cls, payload))


@dataclass(frozen=True)
class StackConfig:
    """One declarative description of a whole detection stack.

    Composes the per-layer specs — detector, execution backend, context
    cache, farm topology, streaming flush policy, control plane — into
    the single serializable value :func:`repro.api.build_stack`
    assembles, the runner's ``--config`` loads, and saved experiment
    JSON embeds.

    ``detector`` may be ``None`` for a *runtime-only* config: the stack
    description an experiment that sweeps many detectors shares across
    its measurements (``build_stack`` then requires an explicit
    ``detector=`` argument).

    Cross-field validation happens here: a governor or non-default
    scheduler settings require a streaming farm, multiple cells require
    streaming, and streaming cells always cache contexts.
    """

    detector: "DetectorSpec | None" = None
    backend: BackendSpec = field(default_factory=BackendSpec)
    cache: CacheSpec = field(default_factory=CacheSpec)
    farm: FarmSpec = field(default_factory=FarmSpec)
    scheduler: SchedulerSpec = field(default_factory=SchedulerSpec)
    governor: "GovernorSpec | None" = None
    tracing: TracingSpec = field(default_factory=TracingSpec)

    def __post_init__(self) -> None:
        for name, cls in (
            ("detector", DetectorSpec),
            ("backend", BackendSpec),
            ("cache", CacheSpec),
            ("farm", FarmSpec),
            ("scheduler", SchedulerSpec),
            ("governor", GovernorSpec),
            ("tracing", TracingSpec),
        ):
            value = getattr(self, name)
            if value is None and name in ("detector", "governor"):
                continue
            if not isinstance(value, cls):
                raise ConfigurationError(
                    f"StackConfig.{name} must be a {cls.__name__} "
                    f"(got {type(value).__name__})"
                )
        if not self.farm.streaming:
            if self.farm.cells > 1:
                raise ConfigurationError(
                    f"{self.farm.cells} cells require a streaming stack "
                    "(set farm.streaming=true)"
                )
            if self.governor is not None:
                raise ConfigurationError(
                    "a governor requires a streaming stack (the control "
                    "plane closes its loop over the scheduler's flush "
                    "telemetry); set farm.streaming=true"
                )
            if self.scheduler != SchedulerSpec():
                raise ConfigurationError(
                    "scheduler settings only apply to a streaming "
                    "stack; set farm.streaming=true"
                )
        elif not self.cache.enabled:
            raise ConfigurationError(
                "streaming cells always cache contexts; cache.enabled="
                "false only applies to a batch stack"
            )

    # ------------------------------------------------------------------
    def with_detector(self, detector: "DetectorSpec | None") -> "StackConfig":
        """This config with the detector spec swapped."""
        return replace(self, detector=detector)

    def split_cells(self, workers: int) -> "tuple[StackConfig, ...]":
        """Partition this streaming farm's cells across ``workers``.

        The coordination primitive of the multi-process farm: each
        returned config describes one worker's contiguous slice of the
        cells (balanced to within one cell, ``cell_offset`` keeping the
        global cell ids unique), with every other layer — detector,
        backend, cache, scheduler, governor policy — copied verbatim,
        so ``build_stack(slice)`` in a fresh process rebuilds exactly
        that worker's share of the farm.  The concatenated
        ``farm.cell_ids()`` of the slices equal this config's
        (property-tested).

        A ``governor.total_path_budget`` is *not* copied into the
        slices: that budget bounds the whole fleet, and per-worker
        governors each applying it to their own subset would multiply
        the pool by the worker count.  The coordinator applies it
        globally instead (see
        :class:`~repro.farm.coordinator.FarmCoordinator`).
        """
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if not self.farm.streaming:
            raise ConfigurationError(
                "split_cells needs a streaming farm (set "
                "farm.streaming=true); a batch stack has no cells to "
                "partition"
            )
        if workers > self.farm.cells:
            raise ConfigurationError(
                f"cannot split {self.farm.cells} cells across {workers} "
                "workers (at least one cell per worker)"
            )
        governor = self.governor
        if governor is not None and governor.total_path_budget is not None:
            governor = replace(governor, total_path_budget=None)
        share, extra = divmod(self.farm.cells, workers)
        configs = []
        offset = self.farm.cell_offset
        for index in range(workers):
            cells = share + (1 if index < extra else 0)
            configs.append(
                replace(
                    self,
                    farm=replace(
                        self.farm, cells=cells, cell_offset=offset
                    ),
                    governor=governor,
                )
            )
            offset += cells
        return tuple(configs)

    def describe(self) -> str:
        """One-line human summary (for notes and logs)."""
        parts = []
        if self.detector is not None:
            parts.append(
                f"{self.detector.name} "
                f"{self.detector.num_streams}x"
                f"{self.detector.num_rx_antennas or self.detector.num_streams}"
                f" {self.detector.qam_order}-QAM"
            )
        parts.append(f"backend={self.backend.name}")
        if self.farm.streaming:
            parts.append(f"streaming x{self.farm.cells} cells")
        else:
            parts.append("batch")
        if self.governor is not None:
            parts.append(f"governor={self.governor.policy}")
        if self.tracing.enabled:
            parts.append("traced")
        return ", ".join(parts)

    def to_dict(self) -> dict:
        """A JSON-native dict; inverse of :meth:`from_dict`."""
        return {
            "detector": (
                self.detector.to_dict() if self.detector is not None else None
            ),
            "backend": self.backend.to_dict(),
            "cache": self.cache.to_dict(),
            "farm": self.farm.to_dict(),
            "scheduler": self.scheduler.to_dict(),
            "governor": (
                self.governor.to_dict() if self.governor is not None else None
            ),
            "tracing": self.tracing.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "StackConfig":
        """Parse (strictly) what :meth:`to_dict` produced."""
        payload = _check_unknown_keys(cls, payload)
        kwargs = {}
        if payload.get("detector") is not None:
            kwargs["detector"] = DetectorSpec.from_dict(payload["detector"])
        if "backend" in payload:
            kwargs["backend"] = BackendSpec.from_dict(payload["backend"])
        if "cache" in payload:
            kwargs["cache"] = CacheSpec.from_dict(payload["cache"])
        if "farm" in payload:
            kwargs["farm"] = FarmSpec.from_dict(payload["farm"])
        if "scheduler" in payload:
            kwargs["scheduler"] = SchedulerSpec.from_dict(
                payload["scheduler"]
            )
        if payload.get("governor") is not None:
            kwargs["governor"] = GovernorSpec.from_dict(payload["governor"])
        if "tracing" in payload:
            kwargs["tracing"] = TracingSpec.from_dict(payload["tracing"])
        return cls(**kwargs)
