"""Config-first API: one declarative surface for the whole stack.

Everything the repo can run — detector, execution backend, coherence
cache, streaming cell farm, slot-deadline scheduler, adaptive governor —
described as one typed, frozen, JSON-round-trippable
:class:`StackConfig`, and assembled by :func:`build_stack` into a live
:class:`UplinkStack` facade::

    from repro.api import StackConfig, DetectorSpec, build_stack

    config = StackConfig(
        detector=DetectorSpec("flexcore", 8, params={"num_paths": 64}),
    )
    with build_stack(config) as stack:
        result = stack.detect_batch(channels, received, noise_var)

    # the config is data: save it, diff it, ship it to a worker
    payload = config.to_dict()           # JSON-native
    assert StackConfig.from_dict(payload) == config

:mod:`repro.api.presets` names the stacks the repo keeps rebuilding
(``"paper-fig9"``, ``"ap-farm"``, ``"farm-overload"``, ``"array-soft"``);
the experiment runner's ``--config`` / ``--preset`` flags and every
saved experiment JSON speak this format.
"""

from repro.api import presets
from repro.api.specs import (
    BackendSpec,
    CacheSpec,
    DetectorSpec,
    FarmSpec,
    GovernorSpec,
    SchedulerSpec,
    StackConfig,
    TracingSpec,
)
from repro.api.stack import UplinkStack, build_stack

__all__ = [
    "BackendSpec",
    "CacheSpec",
    "DetectorSpec",
    "FarmSpec",
    "GovernorSpec",
    "SchedulerSpec",
    "StackConfig",
    "TracingSpec",
    "UplinkStack",
    "build_stack",
    "presets",
]
