#!/usr/bin/env python3
"""A multi-process AP farm: one StackConfig, N supervised workers.

``examples/adaptive_farm.py`` governed N cells inside one process; this
demo takes the same declarative :class:`~repro.api.StackConfig` and
farms it across worker *processes*.  The coordinator
(:class:`~repro.farm.FarmCoordinator`) never ships live objects — each
worker receives its serialized config slice and rebuilds its share of
the farm with :func:`~repro.api.build_stack`, which is exactly what
makes the config the recovery plan:

* cells are partitioned contiguously (``StackConfig.split_cells``), and
  every worker derives the same seeded demand table but serves only its
  own columns, so the work split is exact;
* each chunk reply doubles as a heartbeat; a worker that is SIGKILLed
  (``--kill``) or hangs is re-spawned from its slice and the lost chunk
  is replayed from the same seeds;
* one global path budget (``GovernorSpec.total_path_budget``) is
  water-filled across every worker's governor after each chunk.

Run:  python examples/farm_coordinator.py [--workers 2] [--cells 4]
          [--slots 12] [--scenario steady] [--kill WORKER:CHUNK]
          [--overload 3.0] [--seed 2017]

``--smoke`` runs a short fixed-seed pass with a scripted mid-run kill
of worker 0 and exits non-zero unless the restart is recorded in the
merged telemetry, every offered frame is accounted for, and the
surviving worker's deadline hit-rate stays >= 99% — the CI farm-smoke
lane.
"""

import argparse
import sys

from repro.api import (
    BackendSpec,
    DetectorSpec,
    FarmSpec,
    GovernorSpec,
    SchedulerSpec,
    StackConfig,
)
from repro.control.workload import SCENARIOS, WorkloadScenario
from repro.farm import FarmCoordinator
from repro.mimo.model import noise_variance_for_snr_db
from repro.ofdm.lte import SYMBOLS_PER_SLOT


def build_config(args) -> StackConfig:
    """The whole fleet as one declarative (and shippable) stack config."""
    return StackConfig(
        detector=DetectorSpec(
            "flexcore",
            args.antennas,
            args.antennas,
            16,
            params={"num_paths": args.paths_max},
        ),
        backend=BackendSpec("serial"),  # workers are the parallelism
        farm=FarmSpec(streaming=True, cells=args.cells),
        scheduler=SchedulerSpec(batch_target=SYMBOLS_PER_SLOT),
        governor=GovernorSpec(
            policy="aimd",
            paths_min=2,
            paths_max=args.paths_max,
            total_path_budget=args.cells * (args.paths_max // 2),
        ),
    )


def parse_kill(text: str) -> "dict[int, int]":
    try:
        worker, chunk = map(int, text.split(":", 1))
    except ValueError:
        raise SystemExit(f"--kill wants WORKER:CHUNK, got {text!r}")
    return {worker: chunk}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--cells", type=int, default=4)
    parser.add_argument("--slots", type=int, default=12)
    parser.add_argument("--subcarriers", type=int, default=6)
    parser.add_argument("--antennas", type=int, default=4)
    parser.add_argument("--paths-max", type=int, default=32)
    parser.add_argument("--scenario", choices=SCENARIOS, default="steady")
    parser.add_argument(
        "--kill",
        default=None,
        metavar="WORKER:CHUNK",
        help="SIGKILL that worker right after that chunk is dispatched "
        "(the supervisor must recover and replay)",
    )
    parser.add_argument(
        "--overload",
        type=float,
        default=3.0,
        help="slot interval = overload x the slowest worker's calibrated "
        "slot cost (> 1 leaves deadline headroom; 0 runs unpaced)",
    )
    parser.add_argument("--seed", type=int, default=2017)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fixed-size run with a scripted kill of worker 0; exit 1 "
        "unless the restart is recorded, all frames are accounted for "
        "and the surviving worker's hit-rate is >= 99%%",
    )
    args = parser.parse_args()
    kill_script = parse_kill(args.kill) if args.kill else None
    if args.smoke:
        args.workers, args.cells, args.slots = 2, 4, 12
        args.subcarriers, args.antennas = 4, 4
        args.scenario = "steady"
        kill_script = {0: 1}

    config = build_config(args)
    scenario = WorkloadScenario(
        scenario=args.scenario,
        cells=config.farm.cell_ids(),
        slots=args.slots,
        subcarriers=args.subcarriers,
        seed=args.seed,
    )
    noise_var = noise_variance_for_snr_db(20.0)

    with FarmCoordinator(
        config, args.workers, slots_per_chunk=2, kill_script=kill_script
    ) as coordinator:
        print(
            f"{args.workers} workers x "
            f"{[len(s.farm.cell_ids()) for s in coordinator._slices]} "
            f"cells, {args.scenario} scenario, global path budget "
            f"{config.governor.total_path_budget}"
        )
        if kill_script:
            worker, chunk = next(iter(kill_script.items()))
            print(
                f"scripted crash: SIGKILL worker {worker} after chunk "
                f"{chunk} is dispatched"
            )
        interval = (
            0.0
            if args.overload == 0
            else None  # calibrate inside run()
        )
        report = coordinator.run(
            scenario,
            noise_var,
            slot_interval_s=interval,
            overload=args.overload,
        )

    print(
        f"\nfleet: {report.frames_detected}/{report.frames_offered} "
        f"frames detected, hit-rate {report.hit_rate:.1%}, "
        f"{report.scheduler['summaries_merged']} chunk summaries merged, "
        f"{report.scheduler['frames_missing']} frames missing, "
        f"throughput {report.throughput_fps:,.0f} frames/s"
    )
    for index, summary in enumerate(report.per_worker):
        print(
            f"  worker {index}: {summary['frames_detected']:>5d} detected, "
            f"hit-rate {summary['deadline_hit_rate']:>6.1%}, "
            f"{summary['flushes']:>3d} flushes"
        )
    if report.budgets:
        print(f"  global budget awards: {report.budgets}")
    if report.restarts:
        for restart in report.restarts:
            print(
                f"  recovery: worker {restart.worker} {restart.reason} "
                f"during {restart.phase} -> re-spawned from its config "
                "slice, chunk replayed"
            )
    else:
        print("  no worker restarts")

    if args.smoke:
        survivor = report.per_worker[1]
        failures = []
        if not report.restarts:
            failures.append("no restart recorded in merged telemetry")
        if report.scheduler["frames_missing"] != 0:
            failures.append(
                f"{report.scheduler['frames_missing']} frames missing"
            )
        shed = report.scheduler["frames_shed"]
        if report.frames_detected + shed != report.frames_offered:
            failures.append(
                f"detected {report.frames_detected} + shed {shed} != "
                f"offered {report.frames_offered}"
            )
        if survivor["deadline_hit_rate"] < 0.99:
            failures.append(
                f"surviving worker hit-rate "
                f"{survivor['deadline_hit_rate']:.1%} < 99%"
            )
        if failures:
            print(f"SMOKE FAILED: {'; '.join(failures)}", file=sys.stderr)
            return 1
        print(
            f"SMOKE OK: worker 0 killed and recovered "
            f"({len(report.restarts)} restart(s)); surviving worker "
            f"hit-rate {survivor['deadline_hit_rate']:.1%}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
