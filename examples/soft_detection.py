#!/usr/bin/env python3
"""Soft-output FlexCore: the paper's §7 future work, in action.

Runs the same coded uplink twice — once feeding the Viterbi decoder hard
decisions, once max-log LLRs computed from FlexCore's candidate list —
and prints the coded error rates side by side across an SNR sweep.

Run:  python examples/soft_detection.py
"""

from repro import MimoSystem, QamConstellation
from repro.flexcore import SoftFlexCoreDetector
from repro.link import LinkConfig, simulate_link
from repro.link.channels import rayleigh_sampler


def main() -> None:
    system = MimoSystem(8, 8, QamConstellation(16))
    config = LinkConfig(
        system=system, ofdm_symbols_per_packet=2, num_subcarriers=16
    )
    detector = SoftFlexCoreDetector(system, num_paths=32)
    packets = 16

    print(
        f"{system.label()}, {detector.num_paths} PEs, rate-1/2 coding, "
        f"{packets} packets per point\n"
    )
    print(
        f"{'SNR':>6s} {'hard PER':>9s} {'hard BER':>9s} "
        f"{'soft PER':>9s} {'soft BER':>9s}"
    )
    for snr_db in (4.0, 5.0, 6.0, 7.0):
        hard = simulate_link(
            config, detector, snr_db, packets, rayleigh_sampler(config), rng=5
        )
        soft = simulate_link(
            config,
            detector,
            snr_db,
            packets,
            rayleigh_sampler(config),
            rng=5,
            use_soft=True,
        )
        print(
            f"{snr_db:>5.1f}  {hard.per:>9.3f} {hard.ber:>9.5f} "
            f"{soft.per:>9.3f} {soft.ber:>9.5f}"
        )
    print(
        "\nThe LLRs reuse the Euclidean distances the hard detector "
        "already computed — soft output costs only per-bit minima, and "
        "the embarrassing parallelism survives."
    )


if __name__ == "__main__":
    main()
