#!/usr/bin/env python3
"""An AP farm: N cells streaming slots through one shared backend.

The streaming counterpart of ``examples/office_uplink.py``: instead of
handing the engine fully-formed batches, each cell's radio produces one
:class:`~repro.runtime.scheduler.FrameArrival` burst per subcarrier per
slot (the LTE framing: 7 symbol vectors per subcarrier per 500 µs
slot), and the slot-deadline scheduler assembles micro-batches, flushes
them on batch-target or deadline, and records per-flush latency and
deadline-hit telemetry.  All cells share one execution backend through
the cell-agnostic detection service but keep per-cell context caches —
the multi-cell sharding the ROADMAP's "AP farm" direction asks for.

Python cannot detect at the literal LTE 500 µs budget, so the example
first *calibrates*: it measures one warm, unpaced pass of a slot's work
and sets the slot interval (= the deadline budget) to ``--margin`` times
that, then paces ``--slots`` real-time slots at the calibrated rate.

Run:  python examples/ap_farm.py [--cells 4] [--slots 6]
                                 [--backend serial|process-pool|array]
                                 [--smoke] [--seed 2017]

``--smoke`` runs a short fixed-seed pass and exits non-zero unless the
deadline hit-rate is >= 99% — the CI scheduler smoke lane.
"""

import argparse
import asyncio
import sys
import time

import numpy as np

from repro import MimoSystem, QamConstellation
from repro.api import (
    BackendSpec,
    DetectorSpec,
    FarmSpec,
    SchedulerSpec,
    StackConfig,
    build_stack,
)
from repro.channel.fading import rayleigh_channels
from repro.mimo.model import apply_channel, noise_variance_for_snr_db
from repro.modulation.mapper import random_symbol_indices
from repro.ofdm.lte import SYMBOLS_PER_SLOT
from repro.runtime import FrameArrival


def build_workloads(args, rng):
    """Static per-cell channels plus a received-burst generator.

    Channels are static over the run (the §5 coherence assumption), so
    after the first slot every flush is served from the per-cell cache —
    steady state, which is what the deadline argument is about.
    """
    system = MimoSystem(args.antennas, args.antennas, QamConstellation(16))
    noise_var = noise_variance_for_snr_db(18.0)
    cells = {}
    for index in range(args.cells):
        cells[f"cell{index}"] = rayleigh_channels(
            args.subcarriers, args.antennas, args.antennas, rng
        )

    def slot_bursts(cell_id):
        """One slot of received bursts: (subcarrier, (7, Nr)) pairs."""
        channels = cells[cell_id]
        for sc in range(args.subcarriers):
            indices = random_symbol_indices(
                SYMBOLS_PER_SLOT, args.antennas, system.constellation, rng
            )
            yield sc, apply_channel(
                channels[sc],
                system.constellation.points[indices],
                noise_var,
                rng,
            )

    return system, noise_var, cells, slot_bursts


async def run_farm(args, farm, cells, slot_bursts, noise_var, slot_interval):
    """Pace ``args.slots`` slots of arrivals through the scheduler."""
    async with farm.scheduler(
        batch_target=SYMBOLS_PER_SLOT,
        slot_budget_s=slot_interval,
    ) as scheduler:
        start = time.monotonic()
        futures = []
        for slot in range(args.slots):
            target = start + slot * slot_interval
            delay = target - time.monotonic()
            if delay > 0:
                await asyncio.sleep(delay)
            for cell_id in cells:
                for sc, burst in slot_bursts(cell_id):
                    futures.append(
                        await scheduler.submit(
                            FrameArrival(
                                channel=cells[cell_id][sc],
                                received=burst,
                                noise_var=noise_var,
                                cell=cell_id,
                            )
                        )
                    )
        await scheduler.flush()
        await asyncio.gather(*futures)
        elapsed = time.monotonic() - start
        return scheduler.telemetry, elapsed


def calibrate(args, farm, cells, slot_bursts, noise_var):
    """Measure one warm, unpaced slot pass; returns its wall time."""

    async def one_pass():
        async with farm.scheduler(
            batch_target=SYMBOLS_PER_SLOT,
            slot_budget_s=float("inf"),
        ) as scheduler:
            futures = [
                await scheduler.submit(
                    FrameArrival(
                        channel=cells[cell_id][sc],
                        received=burst,
                        noise_var=noise_var,
                        cell=cell_id,
                    )
                )
                for cell_id in cells
                for sc, burst in slot_bursts(cell_id)
            ]
            await scheduler.flush()
            await asyncio.gather(*futures)

    asyncio.run(one_pass())  # cold pass: fill the per-cell caches
    start = time.monotonic()
    asyncio.run(one_pass())  # warm pass: the steady-state slot cost
    return time.monotonic() - start


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cells", type=int, default=4)
    parser.add_argument("--slots", type=int, default=6)
    parser.add_argument("--subcarriers", type=int, default=16)
    parser.add_argument("--antennas", type=int, default=4)
    parser.add_argument("--backend", default="serial")
    parser.add_argument("--seed", type=int, default=2017)
    parser.add_argument(
        "--margin",
        type=float,
        default=3.0,
        help="slot interval = margin x measured warm slot cost",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="short fixed-size run; exit 1 unless deadline hit-rate >= 99%%",
    )
    args = parser.parse_args()
    if args.smoke:
        args.cells, args.slots, args.subcarriers = 2, 4, 8
    rng = np.random.default_rng(args.seed)

    system, noise_var, cells, slot_bursts = build_workloads(args, rng)
    # The whole farm as one declarative config (the "ap-farm" preset's
    # shape, sized by the CLI flags), assembled via the api facade.
    config = StackConfig(
        detector=DetectorSpec(
            "flexcore",
            args.antennas,
            args.antennas,
            16,
            params={"num_paths": 16},
        ),
        backend=BackendSpec(args.backend),
        farm=FarmSpec(streaming=True, cells=args.cells),
        scheduler=SchedulerSpec(batch_target=SYMBOLS_PER_SLOT),
    )
    stack = build_stack(config)
    farm = stack.farm

    slot_work_s = calibrate(args, farm, cells, slot_bursts, noise_var)
    slot_interval = args.margin * slot_work_s
    print(
        f"{args.cells} cells x {args.subcarriers} subcarriers x "
        f"{SYMBOLS_PER_SLOT} symbols/slot on the {args.backend} backend"
    )
    print(
        f"calibration: warm slot costs {slot_work_s * 1e3:.1f} ms -> "
        f"slot interval/budget {slot_interval * 1e3:.1f} ms "
        f"(margin {args.margin:.1f}x)"
    )

    telemetry, elapsed = asyncio.run(
        run_farm(args, farm, cells, slot_bursts, noise_var, slot_interval)
    )

    print(f"\n{'cell':8s} {'frames':>7s} {'flushes':>8s} {'on-time':>8s} "
          f"{'hit-rate':>9s} {'prepares':>9s} {'cache hits':>11s}")
    for cell_id, stats in sorted(farm.stats().items()):
        print(
            f"{cell_id:8s} {stats.frames:>7d} {stats.flushes:>8d} "
            f"{stats.frames_on_time:>8d} {stats.deadline_hit_rate:>8.1%} "
            f"{stats.cache.misses:>9d} {stats.cache.hits:>11d}"
        )

    hit_rate = telemetry.deadline_hit_rate
    frames_per_s = telemetry.frames_detected / elapsed if elapsed else 0.0
    print(
        f"\n{telemetry.frames_detected} frames in {elapsed * 1e3:.0f} ms "
        f"({frames_per_s:,.0f} frames/s), {telemetry.flushes} flushes, "
        f"deadline hit-rate {hit_rate:.1%}, max flush latency "
        f"{telemetry.max_latency_s * 1e3:.1f} ms"
    )
    print(
        "every cell shares one execution backend; per-cell caches mean "
        "one cell's churn never evicts a neighbour's contexts"
    )

    stack.close()
    if args.smoke:
        if hit_rate < 0.99:
            print(
                f"SMOKE FAILED: deadline hit-rate {hit_rate:.1%} < 99%",
                file=sys.stderr,
            )
            return 1
        print(f"SMOKE OK: deadline hit-rate {hit_rate:.1%}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
