#!/usr/bin/env python3
"""LTE deployment planner: which detector fits which bandwidth mode?

Uses the GPU execution model (the GTX 970 substitute) to answer §5.2's
question: given the 500 µs LTE slot deadline, how many FlexCore tree
paths can a GPU sustain per mode — and can FCSD keep up at all?

Run:  python examples/lte_planner.py
"""

from repro import MimoSystem, QamConstellation
from repro.ofdm import LTE_MODES
from repro.ofdm.lte import SLOT_DURATION_S
from repro.parallel import GpuExecutionModel


def main() -> None:
    gpu = GpuExecutionModel()
    print(
        "FlexCore paths sustainable within one 500 us LTE slot "
        "(8 CUDA streams, 64-QAM)\n"
    )
    header = f"{'mode':>10s} {'vectors/slot':>13s}"
    for size in (8, 12):
        header += f" {f'{size}x{size} paths':>13s} {f'FCSD L=1?':>10s}"
    print(header)

    for mode in LTE_MODES:
        row = f"{mode.label():>10s} {mode.vectors_per_slot:>13d}"
        for size in (8, 12):
            system = MimoSystem(size, size, QamConstellation(64))
            paths = gpu.max_supported_paths(
                system,
                mode.vectors_per_slot,
                SLOT_DURATION_S,
                streams=8,
                num_channels=mode.occupied_subcarriers,
            )
            fcsd_ok = gpu.fcsd_supported(
                system,
                1,
                mode.vectors_per_slot,
                SLOT_DURATION_S,
                streams=8,
                num_channels=mode.occupied_subcarriers,
            )
            row += f" {paths:>13d} {'yes' if fcsd_ok else 'NO':>10s}"
        print(row)

    print(
        "\nFlexCore degrades gracefully (fewer paths, small SNR loss) as "
        "bandwidth grows; FCSD is all-or-nothing and only fits 1.25 MHz "
        "(Fig. 12)."
    )


if __name__ == "__main__":
    main()
