#!/usr/bin/env python3
"""A 12-user coded uplink over the simulated indoor office testbed.

Reproduces the paper's headline scenario (§5.1) in miniature: twelve
64-QAM users transmit 802.11-coded packets to a 12-antenna AP; the
channel comes from the geometric office simulator (the WARP substitute).
Compares network throughput of FlexCore at several PE budgets against
MMSE and FCSD — a one-panel, low-trial slice of Fig. 9.

Run:  python examples/office_uplink.py [serial|process-pool|array]

The optional argument selects the runtime execution backend; ``array``
runs the stacked tensor-walk kernel and honours ``REPRO_ARRAY_BACKEND``
(numpy default, torch/cupy optional) for its array module.  Results are
identical across backends.
"""

import sys

from repro import FcsdDetector, FlexCoreDetector, MimoSystem, MmseDetector, QamConstellation
from repro.api import BackendSpec, StackConfig, build_stack
from repro.channel import IndoorTestbed
from repro.link import LinkConfig, simulate_link
from repro.link.channels import testbed_sampler


def main() -> None:
    backend = sys.argv[1] if len(sys.argv) > 1 else "serial"
    system = MimoSystem(12, 12, QamConstellation(64))
    config = LinkConfig(
        system=system, ofdm_symbols_per_packet=2, num_subcarriers=16
    )
    testbed = IndoorTestbed(num_rx=12, rng=2017)
    sampler = testbed_sampler(config, testbed, num_frames=8)
    snr_db = 14.0
    packets = 16

    print(
        f"{system.label()}: {packets} packets over the office testbed at "
        f"{snr_db:.1f} dB ({backend} backend)\n"
    )
    print(
        f"{'scheme':24s} {'PEs':>5s} {'PER':>7s} {'throughput':>12s} "
        f"{'prepares':>9s} {'cache hits':>11s}"
    )

    schemes = [
        ("MMSE", 0, MmseDetector(system)),
        ("FCSD (L=1)", 64, FcsdDetector(system, num_expanded=1)),
        ("FlexCore", 16, FlexCoreDetector(system, num_paths=16)),
        ("FlexCore", 64, FlexCoreDetector(system, num_paths=64)),
        ("FlexCore", 196, FlexCoreDetector(system, num_paths=196)),
    ]
    # One runtime description shared by every scheme; each detector gets
    # its own stack (and cache) built from it through the api facade.
    stack_config = StackConfig(backend=BackendSpec(backend))
    resident_rows = []
    for name, pes, detector in schemes:
        # The batched runtime detects all 16 subcarriers per packet in
        # one call and caches per-channel contexts; the 8-frame trace
        # cycles, so packets 9..16 hit the cache instead of re-running QR
        # and FlexCore pre-processing.
        with build_stack(stack_config, detector=detector) as engine:
            result = simulate_link(
                config, detector, snr_db, packets, sampler, rng=1,
                engine=engine,
            )
            store = getattr(engine.backend, "resident_store", None)
            if store is not None:
                resident_rows.append((name, pes, store.stats))
        throughput = result.network_throughput_bps(config) / 1e6
        runtime = result.metadata["runtime"]
        print(
            f"{name:24s} {pes:>5d} {result.per:>7.3f} "
            f"{throughput:>9.1f} Mb/s "
            f"{runtime['contexts_prepared']:>9d} "
            f"{runtime['context_cache_hits']:>11d}"
        )

    if resident_rows:
        print(
            "\nDevice residency (array backend): the stacked tensors "
            "upload once per coherence group; warm packets reuse the "
            "resident copies — zero context bytes on the steady path."
        )
        for name, pes, stats in resident_rows:
            print(
                f"  {name:16s} ({pes:>3d} PEs): {stats.entries} groups "
                f"resident, {stats.hits} warm hits, "
                f"{stats.misses} uploads, "
                f"{stats.invalidations} invalidations"
            )

    print(
        "\nFlexCore runs at ANY PE count (here 16/64/196) while FCSD is "
        "locked to powers of |Q| — the flexibility Fig. 9 demonstrates."
        "\nThe coherence cache prepares each distinct channel once and "
        "serves every recurrence for free — the §4 amortisation."
    )


if __name__ == "__main__":
    main()
