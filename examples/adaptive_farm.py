#!/usr/bin/env python3
"""A governed AP farm: the control plane adapting path budgets to load.

``examples/ap_farm.py`` showed N cells streaming slots through one
backend and *measuring* the real-time contract; this demo closes the
loop.  A :class:`~repro.control.ComputeGovernor` watches every flush's
deadline telemetry and turns FlexCore's path count — the paper's
accuracy/compute dial (§3.3) — per cell, per control tick:

* under overload it backs budgets off (AIMD) or sizes them from channel
  conditions (the SNR-aware a-FlexCore policy), keeping slots on time;
* when even the floor budget cannot make the deadline it sheds load
  explicitly rather than miss every slot silently;
* the seeded workload generator (steady / poisson / bursty / diurnal /
  flash-crowd) paces diverse traffic shapes so the adaptation is
  actually exercised.

The slot interval is deliberately calibrated into overload: ``--overload
0.6`` gives every slot only 60% of what the *full-budget* work costs, so
the ungoverned baseline cannot keep up — and the governed farm must
trade paths for punctuality.

Run:  python examples/adaptive_farm.py [--cells 2] [--slots 10]
          [--scenario bursty] [--policy aimd|snr|static]
          [--backend array|serial|process-pool] [--seed 2017]

``--smoke`` runs a short fixed-seed burst-scenario pass and exits
non-zero unless the governed deadline hit-rate is >= 99% — the CI
control-plane smoke lane.
"""

import argparse
import sys

import numpy as np

from repro.api import (
    BackendSpec,
    DetectorSpec,
    FarmSpec,
    GovernorSpec,
    SchedulerSpec,
    StackConfig,
    build_stack,
)
from repro.channel.fading import rayleigh_channels
from repro.control import POLICY_NAMES, WorkloadScenario
from repro.control.workload import SCENARIOS
from repro.mimo.model import noise_variance_for_snr_db
from repro.ofdm.lte import SYMBOLS_PER_SLOT


def build_config(args) -> StackConfig:
    """The whole governed farm as one declarative stack config."""
    return StackConfig(
        detector=DetectorSpec(
            "flexcore",
            args.antennas,
            args.antennas,
            16,
            params={"num_paths": args.paths_max},
        ),
        backend=BackendSpec(args.backend),
        farm=FarmSpec(streaming=True, cells=args.cells),
        scheduler=SchedulerSpec(batch_target=SYMBOLS_PER_SLOT),
        governor=GovernorSpec(
            policy=args.policy,
            paths_min=args.paths_min,
            paths_max=args.paths_max,
            peak_frames_hint=args.subcarriers * SYMBOLS_PER_SLOT,
            target_error_rate=args.target_error,
        ),
    )


def describe(label, outcome, telemetry):
    print(
        f"{label:11s} {telemetry.frames_detected:>6d} detected, "
        f"{outcome.frames_shed:>4d} shed, hit-rate "
        f"{telemetry.deadline_hit_rate:>6.1%}, {telemetry.flushes:>3d} "
        f"flushes, max latency {telemetry.max_latency_s * 1e3:6.1f} ms"
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cells", type=int, default=2)
    parser.add_argument("--slots", type=int, default=10)
    parser.add_argument("--subcarriers", type=int, default=8)
    parser.add_argument("--antennas", type=int, default=8)
    parser.add_argument("--scenario", choices=SCENARIOS, default="bursty")
    parser.add_argument(
        "--policy", choices=POLICY_NAMES, default="aimd"
    )
    parser.add_argument("--paths-min", type=int, default=2)
    parser.add_argument("--paths-max", type=int, default=128)
    parser.add_argument(
        "--target-error",
        type=float,
        default=0.05,
        help="snr policy: modelled vector-error-rate target",
    )
    parser.add_argument("--backend", default="array")
    parser.add_argument("--seed", type=int, default=2017)
    parser.add_argument(
        "--overload",
        type=float,
        default=0.6,
        help="slot interval = overload x full-budget warm slot cost "
        "(< 1 starves the ungoverned farm)",
    )
    parser.add_argument(
        "--no-compare",
        action="store_true",
        help="skip the ungoverned baseline run",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="short fixed-size burst run; exit 1 unless the governed "
        "deadline hit-rate is >= 99%%",
    )
    args = parser.parse_args()
    if args.smoke:
        args.cells, args.slots, args.subcarriers = 2, 8, 6
        args.scenario, args.policy = "bursty", "aimd"
    rng = np.random.default_rng(args.seed)

    config = build_config(args)
    system = config.detector.system()
    noise_var = noise_variance_for_snr_db(20.0)
    cell_ids = config.farm.cell_ids()
    cell_channels = {
        cell_id: rayleigh_channels(
            args.subcarriers, args.antennas, args.antennas, rng
        )
        for cell_id in cell_ids
    }
    scenario = WorkloadScenario(
        scenario=args.scenario,
        cells=cell_ids,
        slots=args.slots,
        subcarriers=args.subcarriers,
        seed=args.seed,
    )

    with build_stack(config) as stack:
        slot_cost = stack.calibrate_slot_cost(
            scenario, cell_channels, noise_var
        )
        slot_interval = args.overload * slot_cost
        print(
            f"{args.cells} cells x {args.subcarriers} subcarriers x "
            f"{SYMBOLS_PER_SLOT} symbols/slot, {args.scenario} scenario on "
            f"the {args.backend} backend"
        )
        print(
            f"calibration: full-budget ({args.paths_max} paths) slot costs "
            f"{slot_cost * 1e3:.1f} ms -> slot interval/budget "
            f"{slot_interval * 1e3:.1f} ms ({args.overload:g}x = deliberate "
            "overload)\n"
        )

        if not args.no_compare:
            outcome, telemetry = stack.run_streaming(
                scenario,
                cell_channels,
                noise_var,
                slot_interval_s=slot_interval,
                governor=None,
            )
            describe("ungoverned", outcome, telemetry)

        governor = stack.governor
        outcome, telemetry = stack.run_streaming(
            scenario,
            cell_channels,
            noise_var,
            slot_interval_s=slot_interval,
        )
        describe("governed", outcome, telemetry)

        print(f"\npolicy {args.policy}: paths in "
              f"[{args.paths_min}, {args.paths_max}]")
        for cell_id in cell_ids:
            trajectory = governor.telemetry.budget_trajectory(cell_id)
            if len(trajectory) > 12:
                shown = ", ".join(map(str, trajectory[:12])) + ", ..."
            else:
                shown = ", ".join(map(str, trajectory))
            stats = stack.farm[cell_id].stats
            print(
                f"  {cell_id}: budget trajectory [{shown}] "
                f"(shed {stats.frames_shed} frames)"
            )
        summary = governor.as_dict()
        print(
            f"governor: {summary['ticks']} ticks, "
            f"{summary['budget_increases']} increases, "
            f"{summary['budget_decreases']} decreases, "
            f"{summary['sheds_started']} shed episodes"
        )
        print(
            "the governed farm spends paths only where the deadline allows; "
            "the ungoverned farm burns its full budget missing slots"
        )

    if args.smoke:
        hit_rate = telemetry.deadline_hit_rate
        if hit_rate < 0.99:
            print(
                f"SMOKE FAILED: governed deadline hit-rate "
                f"{hit_rate:.1%} < 99%",
                file=sys.stderr,
            )
            return 1
        print(f"SMOKE OK: governed deadline hit-rate {hit_rate:.1%}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
