#!/usr/bin/env python3
"""a-FlexCore: an access point that spends PEs only when the channel
demands it.

Sweeps the number of active users on a 12-antenna AP (the Fig. 10
scenario): with few users the channel is well conditioned and a-FlexCore
activates ~1 processing element (linear-detector complexity); at full
load it lights up the whole pool while matching plain FlexCore's
throughput.

Run:  python examples/adaptive_ap.py
"""

from repro import AdaptiveFlexCoreDetector, MimoSystem, QamConstellation
from repro.channel import IndoorTestbed
from repro.link import LinkConfig, simulate_link
from repro.link.channels import testbed_sampler

AP_ANTENNAS = 12
AVAILABLE_PES = 64


def main() -> None:
    snr_db = 15.0
    print(
        f"a-FlexCore on a {AP_ANTENNAS}-antenna AP, {AVAILABLE_PES} PEs "
        f"available, 64-QAM, {snr_db:.0f} dB\n"
    )
    print(f"{'users':>5s} {'PER':>7s} {'throughput':>12s} {'avg active PEs':>15s}")
    for num_users in (4, 6, 8, 10, 12):
        system = MimoSystem(num_users, AP_ANTENNAS, QamConstellation(64))
        config = LinkConfig(
            system=system, ofdm_symbols_per_packet=2, num_subcarriers=12
        )
        testbed = IndoorTestbed(num_rx=AP_ANTENNAS, rng=100 + num_users)
        sampler = testbed_sampler(config, testbed, num_frames=4)
        detector = AdaptiveFlexCoreDetector(
            system, num_paths=AVAILABLE_PES, probability_target=0.95
        )
        result = simulate_link(config, detector, snr_db, 10, sampler, rng=3)
        throughput = result.network_throughput_bps(config) / 1e6
        active = result.metadata["average_active_paths"]
        print(
            f"{num_users:>5d} {result.per:>7.3f} {throughput:>9.1f} Mb/s "
            f"{active:>15.1f}"
        )
    print(
        "\nUnderloaded APs detect near-optimally with ~1 PE; the full "
        "pool engages only as conditioning degrades (Fig. 10's line)."
    )


if __name__ == "__main__":
    main()
