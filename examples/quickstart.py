#!/usr/bin/env python3
"""Quickstart: detect an 8x8 16-QAM uplink with FlexCore.

Builds a random Rayleigh channel, runs FlexCore next to MMSE and the
exact-ML sphere decoder, and prints symbol error rates plus FlexCore's
pre-processing diagnostics — the smallest end-to-end tour of the API.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    FlexCoreDetector,
    MimoSystem,
    MmseDetector,
    QamConstellation,
    SphereDecoder,
)
from repro.channel import rayleigh_channel
from repro.mimo import apply_channel, noise_variance_for_snr_db
from repro.modulation import random_symbol_indices


def main() -> None:
    rng = np.random.default_rng(7)
    system = MimoSystem(
        num_streams=8, num_rx_antennas=8, constellation=QamConstellation(16)
    )
    snr_db = 16.0
    noise_var = noise_variance_for_snr_db(snr_db)

    # One channel realisation, a thousand transmit vectors.
    channel = rayleigh_channel(system.num_rx_antennas, system.num_streams, rng)
    tx_indices = random_symbol_indices(1000, system.num_streams,
                                       system.constellation, rng)
    received = apply_channel(
        channel, system.constellation.points[tx_indices], noise_var, rng
    )

    detectors = {
        "MMSE (linear baseline)": MmseDetector(system),
        "FlexCore, 16 PEs": FlexCoreDetector(system, num_paths=16),
        "FlexCore, 64 PEs": FlexCoreDetector(system, num_paths=64),
        "Sphere decoder (exact ML)": SphereDecoder(system),
    }

    print(f"{system.label()} uplink at {snr_db:.0f} dB per-user SNR\n")
    for name, detector in detectors.items():
        result = detector.detect(channel, received, noise_var)
        ser = np.mean(result.indices != tx_indices)
        print(f"  {name:28s} symbol error rate = {ser:.4f}")

    # Peek inside FlexCore's pre-processing: the most promising tree
    # paths for this channel, before any signal arrived.
    flexcore = FlexCoreDetector(system, num_paths=8)
    context = flexcore.prepare(channel, noise_var)
    print("\nFlexCore pre-processing (8 most promising position vectors):")
    for vector, probability in zip(
        context.preprocessing.position_vectors,
        context.preprocessing.probabilities,
    ):
        print(f"  p = {vector.tolist()}   Pc ~ {probability:.3e}")
    print(
        f"\ncaptured probability mass: "
        f"{context.preprocessing.cumulative_probability:.3f}  "
        f"(tree multiplications: "
        f"{context.preprocessing.real_multiplications})"
    )


if __name__ == "__main__":
    main()
