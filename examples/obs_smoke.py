#!/usr/bin/env python3
"""Observability smoke: a traced fleet run plus artifact validation.

Two modes, both used by the CI ``obs-smoke`` lane:

``--smoke``
    Run a 2-worker coordinated fleet with tracing enabled and a
    scripted mid-run SIGKILL of worker 0, unpaced so governor ticks
    fire every flush opportunity.  Exit non-zero unless the merged
    Chrome trace carries one lane per worker, at least one
    ``governor_tick`` span and the ``worker_restart`` instant, and the
    Prometheus dump carries the deadline/latency series.  The trace
    and metrics files land in ``--out`` and are re-validated from disk
    through the same checks as ``--validate``.

``--validate TRACE METRICS``
    Validate artifacts some other run produced (CI points this at the
    runner's ``--trace`` / ``--metrics-dump`` output): the trace must
    be Chrome trace-event JSON (every event carrying ``name``/``ph``/
    ``ts``/``pid``/``tid``, timestamps monotone within each lane) and
    the metrics dump must expose the ``repro_deadline_hit_rate`` gauge
    and the ``repro_flush_latency_seconds`` histogram series.
"""

import argparse
import json
import sys
from pathlib import Path

from repro.api import (
    BackendSpec,
    DetectorSpec,
    FarmSpec,
    GovernorSpec,
    SchedulerSpec,
    StackConfig,
    TracingSpec,
)
from repro.control.workload import WorkloadScenario
from repro.farm import FarmCoordinator
from repro.mimo.model import noise_variance_for_snr_db
from repro.obs import (
    EVENT_WORKER_RESTART,
    MAIN_PID,
    SPAN_GOVERNOR_TICK,
    WORKER_PID_BASE,
)


def validate_trace(path: Path) -> "list[str]":
    """Chrome trace-event JSON checks; returns failure messages."""
    failures = []
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as error:
        return [f"{path}: unreadable trace JSON ({error})"]
    events = payload.get("traceEvents")
    if not isinstance(events, list) or not events:
        return [f"{path}: no traceEvents array"]
    lanes = {}
    for event in events:
        missing = {"name", "ph", "pid", "tid"} - set(event)
        if event.get("ph") != "M":
            missing |= {"ts"} - set(event)
        if missing:
            failures.append(f"event missing keys {sorted(missing)}: {event}")
            continue
        if event["ph"] == "M":
            continue
        lanes.setdefault((event["pid"], event["tid"]), []).append(
            event["ts"]
        )
    for lane, stamps in lanes.items():
        if stamps != sorted(stamps):
            failures.append(f"lane {lane}: timestamps not monotone")
    if not lanes:
        failures.append("no timestamped events in any lane")
    return failures


def validate_metrics(path: Path) -> "list[str]":
    """Prometheus text exposition checks; returns failure messages."""
    try:
        text = path.read_text()
    except OSError as error:
        return [f"{path}: unreadable metrics dump ({error})"]
    failures = []
    for required in (
        "# TYPE repro_deadline_hit_rate gauge",
        "repro_deadline_hit_rate ",
        "# TYPE repro_flush_latency_seconds histogram",
        'repro_flush_latency_seconds_bucket{le="+Inf"}',
        "repro_flush_latency_seconds_count ",
    ):
        if required not in text:
            failures.append(f"{path}: missing {required!r}")
    return failures


def run_smoke(args) -> int:
    config = StackConfig(
        detector=DetectorSpec(
            "flexcore", 4, 4, 16, params={"num_paths": 16}
        ),
        backend=BackendSpec("serial"),
        farm=FarmSpec(streaming=True, cells=4),
        scheduler=SchedulerSpec(),
        governor=GovernorSpec(policy="aimd", paths_min=2, paths_max=16),
        tracing=TracingSpec(enabled=True),
    )
    scenario = WorkloadScenario(
        scenario="steady",
        cells=config.farm.cell_ids(),
        slots=12,
        subcarriers=4,
        seed=args.seed,
    )
    with FarmCoordinator(
        config, 2, slots_per_chunk=2, kill_script={0: 1}
    ) as coordinator:
        print(
            "2 traced workers, scripted SIGKILL of worker 0 after "
            "chunk 1; unpaced slots so the governor ticks every flush"
        )
        report = coordinator.run(
            scenario,
            noise_variance_for_snr_db(20.0),
            slot_interval_s=0.0,
        )
        obs = coordinator.obs

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    trace_path = out / "trace.json"
    metrics_path = out / "metrics.prom"
    obs.export_trace(trace_path)
    obs.dump_metrics(metrics_path)

    events = obs.tracer.events
    pids = {event["pid"] for event in events}
    ticks = sum(1 for e in events if e["name"] == SPAN_GOVERNOR_TICK)
    restart_instants = [
        e for e in events if e["name"] == EVENT_WORKER_RESTART
    ]
    print(
        f"\nfleet: {report.frames_detected}/{report.frames_offered} "
        f"frames detected, {len(events)} trace events across "
        f"{len(pids)} lanes, {ticks} governor ticks, "
        f"{len(restart_instants)} restart instants"
    )

    failures = []
    expected_lanes = {MAIN_PID, WORKER_PID_BASE, WORKER_PID_BASE + 1}
    if pids != expected_lanes:
        failures.append(
            f"merged timeline lanes {sorted(pids)} != "
            f"{sorted(expected_lanes)} (main + one per worker)"
        )
    if ticks < 1:
        failures.append("no governor_tick span in the merged trace")
    if not restart_instants:
        failures.append("no worker_restart instant in the merged trace")
    elif restart_instants[0]["pid"] != WORKER_PID_BASE:
        failures.append(
            "worker_restart instant not on the killed worker's lane"
        )
    if not report.restarts:
        failures.append("no restart recorded in the fleet report")
    failures += validate_trace(trace_path)
    failures += validate_metrics(metrics_path)

    if failures:
        for failure in failures:
            print(f"SMOKE FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"obs smoke OK: {trace_path} and {metrics_path} validated "
        "(per-worker lanes, governor tick, restart instant)"
    )
    return 0


def run_validate(trace: str, metrics: str) -> int:
    failures = validate_trace(Path(trace)) + validate_metrics(
        Path(metrics)
    )
    if failures:
        for failure in failures:
            print(f"VALIDATE FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"obs artifacts OK: {trace}, {metrics}")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the traced 2-worker kill-recovery fleet and validate "
        "its merged trace + metrics artifacts",
    )
    parser.add_argument(
        "--validate",
        nargs=2,
        metavar=("TRACE", "METRICS"),
        help="validate an existing Chrome trace JSON and Prometheus "
        "dump produced elsewhere (e.g. the runner's --trace / "
        "--metrics-dump)",
    )
    parser.add_argument("--out", default="out", help="artifact directory")
    parser.add_argument("--seed", type=int, default=2017)
    args = parser.parse_args()
    if args.validate:
        return run_validate(*args.validate)
    if args.smoke:
        return run_smoke(args)
    parser.error("choose --smoke or --validate TRACE METRICS")


if __name__ == "__main__":
    raise SystemExit(main())
