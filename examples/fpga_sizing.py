#!/usr/bin/env python3
"""FPGA sizing study: processing elements vs energy per bit.

Walks the §5.3 design space on the modelled XCVU440: for detection
operating points with equal network throughput (FlexCore 128 paths vs
FCSD L=2's 4096), how do throughput and J/bit evolve as processing
elements are instantiated — and where does the 75% utilisation cap land?

Run:  python examples/fpga_sizing.py
"""

from repro import MimoSystem, QamConstellation
from repro.parallel import (
    FpgaEngineModel,
)
from repro.parallel.fpga import FCSD_COST_MODEL, FLEXCORE_COST_MODEL


def main() -> None:
    system = MimoSystem(12, 12, QamConstellation(64))
    flex = FpgaEngineModel(FLEXCORE_COST_MODEL, system)
    fcsd = FpgaEngineModel(FCSD_COST_MODEL, system)

    print("12x12 64-QAM engines at the 5.5 ns design point\n")
    print("per-PE cost (model calibrated on the paper's synthesis):")
    for name, model in (("FlexCore", FLEXCORE_COST_MODEL), ("FCSD", FCSD_COST_MODEL)):
        print(
            f"  {name:9s} logic={model.logic_luts(12):7.0f} LUTs  "
            f"DSP48={model.dsp48(12):3d}  fmax={model.fmax_mhz:.1f} MHz  "
            f"P={model.power_w(12):.2f} W"
        )

    print(
        f"\nequal-throughput operating points: FlexCore 128 paths vs "
        f"FCSD 4096 paths (L=2)\n"
    )
    print(
        f"{'PEs':>5s} {'FlexCore Gb/s':>14s} {'FlexCore nJ/b':>14s} "
        f"{'FCSD Gb/s':>10s} {'FCSD nJ/b':>10s} {'ratio':>7s}"
    )
    for num_pes in (1, 2, 4, 8, 16, 32, 64, 128):
        fx_thr = flex.processing_throughput_bps(num_pes, 128) / 1e9
        fx_jb = flex.energy_per_bit(num_pes, 128) * 1e9
        fc_thr = fcsd.processing_throughput_bps(num_pes, 4096) / 1e9
        fc_jb = fcsd.energy_per_bit(num_pes, 4096) * 1e9
        print(
            f"{num_pes:>5d} {fx_thr:>14.2f} {fx_jb:>14.2f} "
            f"{fc_thr:>10.3f} {fc_jb:>10.1f} {fc_jb / fx_jb:>6.1f}x"
        )

    print(
        f"\ndevice caps (75% utilisation): FlexCore "
        f"{flex.max_instantiable_pes()} PEs, FCSD "
        f"{fcsd.max_instantiable_pes()} PEs"
    )
    print(
        "FCSD burns an order of magnitude more energy per delivered bit "
        "at the same network throughput (Fig. 13)."
    )


if __name__ == "__main__":
    main()
